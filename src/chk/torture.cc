#include "src/chk/torture.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "src/chk/history.h"
#include "src/chk/protocol_analyzer.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/membership.h"
#include "src/cluster/node.h"
#include "src/cluster/partition_map.h"
#include "src/rep/migration.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/sim/htm.h"
#include "src/store/hash_store.h"
#include "src/store/record.h"
#include "src/store/table.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"
#include "src/util/rand.h"
#include "src/util/time_gate.h"

namespace drtmr::chk {
namespace {

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kTableId = 1;
constexpr int64_t kInitialBalance = 1000;

// Victim workers park this far (virtual time) before the kill instant so the
// machine dies between transactions — fail-stop, never fail-torn. Generous
// relative to one transfer's virtual cost (a few microseconds).
constexpr uint64_t kKillMarginNs = 40'000;

uint64_t KeyOf(uint32_t part, uint64_t i) {
  return (static_cast<uint64_t>(part) << 16) | (i + 1);
}

// Zipfian index sampler over [0, n): P(i) ∝ 1/(i+1)^theta by inverse CDF.
// Inactive (and cost-free at the pick site) when theta <= 0, so the default
// uniform shapes reproduce byte-identical histories for existing seeds. The
// pick site rotates the rank by the partition id so each node has a distinct
// hot key — otherwise every partition's traffic would collapse onto index 0
// and cross-node transfers would see no skew at the remote side.
class ZipfPicker {
 public:
  ZipfPicker(uint32_t n, double theta) {
    if (theta <= 0.0 || n <= 1) {
      return;
    }
    cdf_.resize(n);
    double acc = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) {
      c /= acc;
    }
  }

  bool active() const { return !cdf_.empty(); }

  uint32_t Pick(FastRand* rng) const {
    const double u =
        static_cast<double>(rng->Uniform(1u << 30)) / static_cast<double>(1u << 30);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

const char* TorturePlanKindName(TorturePlanKind kind) {
  switch (kind) {
    case TorturePlanKind::kClean:
      return "clean";
    case TorturePlanKind::kDelay:
      return "delay";
    case TorturePlanKind::kHtmAbort:
      return "htm-abort";
    case TorturePlanKind::kFreeze:
      return "freeze";
    case TorturePlanKind::kPartition:
      return "partition";
    case TorturePlanKind::kKill:
      return "kill";
    case TorturePlanKind::kNumKinds:
      break;
  }
  return "?";
}

sim::FaultPlan MakeTorturePlan(TorturePlanKind kind, uint64_t seed, uint32_t nodes) {
  // Pure function of (kind, seed, nodes): the sweep reproduces any failure
  // from the three numbers it prints.
  FastRand rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(kind) + 1);
  sim::FaultPlan plan(seed);
  const auto any = sim::FaultPlan::kAnyNode;
  switch (kind) {
    case TorturePlanKind::kClean:
    case TorturePlanKind::kNumKinds:
      break;
    case TorturePlanKind::kDelay: {
      // Background jitter on every path plus one heavily delayed pair; the
      // posted-verb variants slide completions, reordering batch arrival.
      plan.DelayVerbs(any, any, {0, 0}, 200 + rng.Uniform(2000),
                      /*ppm=*/300'000 + rng.Uniform(400'000));
      const uint32_t a = static_cast<uint32_t>(rng.Uniform(nodes));
      const uint32_t b = static_cast<uint32_t>(rng.Uniform(nodes));
      const uint64_t from = 20'000 + rng.Uniform(100'000);
      plan.DelayVerbs(a, b, {from, from + 150'000}, 5'000 + rng.Uniform(10'000));
      break;
    }
    case TorturePlanKind::kHtmAbort: {
      // Conflict-coded aborts at the commit region drive the §6.1 fallback;
      // capacity-coded aborts at the local-read region drive its retry loop.
      plan.ForceHtmAbort(obs::HtmSite::kCommit,
                         static_cast<uint32_t>(sim::HtmTxn::AbortCode::kConflict),
                         /*ppm=*/150'000 + rng.Uniform(250'000));
      plan.ForceHtmAbort(obs::HtmSite::kLocalRead,
                         static_cast<uint32_t>(sim::HtmTxn::AbortCode::kCapacity),
                         /*ppm=*/50'000 + rng.Uniform(100'000));
      break;
    }
    case TorturePlanKind::kFreeze: {
      const uint32_t victim = static_cast<uint32_t>(rng.Uniform(nodes));
      const uint64_t from = 30'000 + rng.Uniform(100'000);
      const uint64_t dur = 40'000 + rng.Uniform(80'000);
      plan.Freeze(victim, {from, from + dur});
      // A second, later freeze of (usually) another node.
      const uint32_t victim2 = static_cast<uint32_t>(rng.Uniform(nodes));
      const uint64_t from2 = from + dur + rng.Uniform(100'000);
      plan.Freeze(victim2, {from2, from2 + 30'000 + rng.Uniform(50'000)});
      break;
    }
    case TorturePlanKind::kPartition: {
      const uint32_t a = static_cast<uint32_t>(rng.Uniform(nodes));
      const uint32_t b = (a + 1 + static_cast<uint32_t>(rng.Uniform(nodes - 1))) % nodes;
      const uint64_t from = 30'000 + rng.Uniform(80'000);
      plan.Partition(a, b, {from, from + 50'000 + rng.Uniform(100'000)});
      plan.DelayVerbs(any, any, {0, 0}, 500 + rng.Uniform(1'500),
                      /*ppm=*/100'000 + rng.Uniform(200'000));
      break;
    }
    case TorturePlanKind::kKill: {
      const uint32_t victim = static_cast<uint32_t>(rng.Uniform(nodes));
      plan.KillAt(victim, 120'000 + rng.Uniform(80'000));
      break;
    }
  }
  return plan;
}

std::string TortureResult::Summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED") << ": " << committed << " transfers, " << audits << " audits";
  if (killed) {
    os << ", killed+recovered (" << recovered_records << " records rehosted)";
  }
  if (epoch_changes > 0) {
    os << "\n  failover: " << suspicions << " suspicions, " << epoch_changes
       << " epoch changes, " << recoveries << " recoveries, " << rejoins << " rejoins";
  }
  if (migrations > 0) {
    os << "\n  migration: " << migrations << " started, " << migrations_committed
       << " committed, " << migrations_rolled_back << " rolled back";
  }
  os << "\n  checker: " << check.Summary();
  if (violations > 0) {
    os << "\n  analyzer: " << violations << " protocol violation(s)";
  }
  for (const std::string& e : errors) {
    os << "\n  oracle: " << e;
  }
  return os.str();
}

TortureResult RunTorture(const TortureOptions& opt) {
  const TortureShape& shape = opt.shape;
  const uint32_t nodes = shape.nodes;
  const uint32_t replicas = std::min(shape.replicas, nodes);
  const bool replication = replicas > 1;

  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = shape.workers + 1;  // extra slot runs the read-only auditor
  cfg.memory_bytes = 16 << 20;
  cfg.log_bytes = 4 << 20;
  // Enable the analyzer before the table load so every record registers its
  // shadow. seq parity only carries makeup-window meaning under replication
  // (without it, commits step the seq by 1 and parity alternates).
  ProtocolAnalyzer& analyzer = ProtocolAnalyzer::Global();
  if (opt.analyze) {
    analyzer.Reset();
    analyzer.set_seq_parity(replication);
    analyzer.Enable(true);
  }

  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  store::TableOptions topt;
  topt.value_size = sizeof(Cell);
  topt.hash_buckets = 256;
  store::Table* table = catalog.CreateTable(kTableId, topt);

  cluster::Coordinator coordinator;
  // No-oracle mode nodes hold real leases that the membership layer has to
  // keep renewing; oracle mode keeps the effectively-infinite leases.
  cluster::MembershipConfig mcfg;
  mcfg.seed = opt.seed;
  for (uint32_t i = 0; i < nodes; ++i) {
    coordinator.Join(i, 0, opt.no_oracle ? mcfg.lease_ns : (~0ull >> 2));
  }
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator;
  if (replication) {
    rep::RepConfig rcfg;
    rcfg.replicas = replicas;
    rcfg.group_commit_window = shape.group_commit_window;
    rcfg.test = opt.rep_test;
    replicator = std::make_unique<rep::PrimaryBackupReplicator>(&cluster, rcfg);
  }
  txn::TxnConfig tcfg;
  tcfg.replication = replication;
  tcfg.unsafe_skip_read_validation = opt.unsafe_skip_read_validation;
  txn::TxnEngine engine(&cluster, &catalog, tcfg, &coordinator, replicator.get());
  engine.StartServices();
  cluster::PartitionMap pmap(nodes);

  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t i = 0; i < shape.keys_per_node; ++i) {
      Cell c{kInitialBalance, {}};
      const Status is = table->hash(n)->Insert(cluster.node(n)->context(0), KeyOf(n, i), &c,
                                               nullptr);
      DRTMR_CHECK(is == Status::kOk) << "torture table load failed";
      if (replicator != nullptr) {
        const uint64_t off = table->hash(n)->Lookup(nullptr, KeyOf(n, i));
        std::vector<std::byte> img(table->record_bytes());
        cluster.node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < replicas; ++r) {
          replicator->SeedBackup(cluster.BackupOf(n, r), kTableId, n, KeyOf(n, i), img.data(),
                                 img.size());
        }
      }
    }
  }
  const int64_t total = static_cast<int64_t>(nodes) * shape.keys_per_node * kInitialBalance;

  const sim::FaultPlan local_plan =
      opt.plan_override != nullptr ? *opt.plan_override
                                   : MakeTorturePlan(opt.plan_kind, opt.seed, nodes);
  const sim::FaultPlan& plan = local_plan;
  cluster.SetFaultPlan(&plan);

  uint32_t victim = sim::FaultPlan::kAnyNode;
  for (uint32_t n = 0; n < nodes; ++n) {
    if (plan.KillTimeOf(n) != ~0ull) {
      victim = n;
    }
  }

  // --- no-oracle failover layer ---
  // The gate window must stay below MembershipConfig::commit_guard_ns (12us)
  // so a straggler's commit-entry clock cannot sit far enough behind the
  // driver's to outrun an expired lease (membership.h).
  TimeGate gate(/*window_ns=*/8'000);
  std::vector<uint32_t> worker_gate(nodes * shape.workers, 0);
  std::vector<uint32_t> auditor_gate(nodes, 0);
  std::unique_ptr<rep::RecoveryManager> auto_rm;
  std::unique_ptr<cluster::MembershipService> membership;
  std::atomic<uint64_t> auto_rehosted{0};
  if (opt.no_oracle) {
    DRTMR_CHECK(replication);  // recovery needs backups: replicas >= 2
    for (uint32_t n = 0; n < nodes; ++n) {
      for (uint32_t w = 0; w < shape.workers; ++w) {
        worker_gate[n * shape.workers + w] =
            gate.AddClock(&cluster.node(n)->context(w)->clock);
      }
      auditor_gate[n] = gate.AddClock(&cluster.node(n)->context(shape.workers)->clock);
    }
    auto_rm = std::make_unique<rep::RecoveryManager>(&engine, replicator.get(), &coordinator);
    membership =
        std::make_unique<cluster::MembershipService>(&cluster, &coordinator, &pmap, mcfg);
    membership->set_recovery_fn([&](uint32_t dead, uint32_t host) {
      const rep::RecoveryReport rep = auto_rm->RecoverAfterFailure(
          cluster.node(host)->tool_context(), dead, host, /*pmap=*/nullptr);
      auto_rehosted.fetch_add(rep.records_rehosted);
    });
    membership->set_time_gate(&gate);
    engine.set_membership(membership.get());
    cluster.set_time_gate(&gate);
    membership->Start();
  }

  // --- live-migration layer (DESIGN.md §14) ---
  // Built before the worker threads exist so the write-admission block is
  // registered with the engine from the first commit.
  std::unique_ptr<rep::MigrationManager> migrator;
  if (opt.migrate) {
    DRTMR_CHECK(opt.no_oracle)
        << "migrate mode needs the epoch-fence substrate (no_oracle)";
    rep::MigrationSpec mspec;
    mspec.tables = {table};
    mspec.partition_of = [](uint64_t key) { return static_cast<uint32_t>(key >> 16); };
    mspec.seed = opt.seed;
    migrator = std::make_unique<rep::MigrationManager>(&engine, replicator.get(),
                                                       &coordinator, &pmap, std::move(mspec));
  }

  TortureResult result;
  result.killed = victim != sim::FaultPlan::kAnyNode;
  std::mutex err_mu;
  auto flag = [&](const std::string& msg) {
    std::lock_guard<std::mutex> g(err_mu);
    if (result.errors.size() < 20) {
      result.errors.push_back(msg);
    }
  };

  HistoryRecorder::Global().Reset();
  HistoryRecorder::Global().Enable(true);

  // One transfer with retry-until-commit; every loop re-checks the kill
  // boundary so a victim worker parks at a transaction boundary.
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> audits{0};
  std::atomic<uint32_t> running{nodes * shape.workers};
  const bool debug = std::getenv("DRTMR_TORTURE_DEBUG") != nullptr;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> dbg_stage;
  for (uint32_t i = 0; i < nodes * shape.workers; ++i) {
    dbg_stage.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  // Shared, read-only after construction; the post-kill probes stay uniform
  // on purpose (they verify coverage of the recovered partition, not
  // contention behaviour).
  const ZipfPicker zipf(shape.keys_per_node, shape.zipf_theta);
  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < nodes; ++n) {
    const uint64_t kill_ns = plan.KillTimeOf(n);
    for (uint32_t w = 0; w < shape.workers; ++w) {
      workers.emplace_back([&, n, w, kill_ns] {
        sim::ThreadContext* ctx = cluster.node(n)->context(w);
        txn::Transaction txn(&engine, ctx);
        FastRand rng(opt.seed * 131 + n * 31 + w + 5);
        // Jittered escalation for routing rejections (kStaleEpoch/kMigrating):
        // the drain window is bounded, so callers back off rather than spin.
        // Draws from `rng` only on the rejection paths, so fault-free
        // histories stay byte-identical for existing seeds.
        util::Backoff route_backoff = util::Backoff::Exponential(400, 1600, /*max_shift=*/7);
        std::atomic<uint64_t>& stage = *dbg_stage[n * shape.workers + w];
        uint64_t done = 0;
        uint64_t attempts = 0;
        const uint64_t max_attempts = static_cast<uint64_t>(shape.txns_per_worker) * 50;
        while (done < shape.txns_per_worker && attempts < max_attempts) {
          if (kill_ns != ~0ull && ctx->clock.now_ns() + kKillMarginNs >= kill_ns) {
            break;  // our machine is about to fail-stop
          }
          ++attempts;
          stage.store(attempts * 10 + 1, std::memory_order_relaxed);
          const uint32_t fp = static_cast<uint32_t>(rng.Uniform(nodes));
          const uint32_t tp = static_cast<uint32_t>(rng.Uniform(nodes));
          const uint64_t from =
              KeyOf(fp, zipf.active() ? (zipf.Pick(&rng) + fp) % shape.keys_per_node
                                      : rng.Uniform(shape.keys_per_node));
          const uint64_t to =
              KeyOf(tp, zipf.active() ? (zipf.Pick(&rng) + tp) % shape.keys_per_node
                                      : rng.Uniform(shape.keys_per_node));
          if (from == to) {
            continue;
          }
          const int64_t amt = 1 + static_cast<int64_t>(rng.Uniform(9));
          txn.Begin();
          // Route once per attempt, after Begin, against this transaction's
          // begin epoch: an entry flipped under a newer epoch (recovery or a
          // migration cutover) rejects the stale router here instead of
          // wasting the commit path, and a partition inside its migration
          // write-drain window rejects writers outright. Legacy non-fenced
          // runs pass ~0 and accept every entry (begin_epoch stays 0 there
          // while scripted recovery raises entry epochs).
          const uint64_t be = engine.fencing() ? txn.begin_epoch() : ~0ull;
          uint32_t fn = 0, tn = 0;
          if (pmap.Route(fp, be, /*for_write=*/true, &fn) != Status::kOk ||
              pmap.Route(tp, be, /*for_write=*/true, &tn) != Status::kOk) {
            txn.UserAbort();
            ctx->Charge(route_backoff.NextDelay(&rng));
            continue;
          }
          route_backoff.Reset();
          Cell a{}, b{};
          stage.store(attempts * 10 + 2, std::memory_order_relaxed);
          if (txn.Read(table, fn, from, &a) != Status::kOk ||
              txn.Read(table, tn, to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          a.value -= amt;
          b.value += amt;
          stage.store(attempts * 10 + 3, std::memory_order_relaxed);
          if (txn.Write(table, fn, from, &a) != Status::kOk ||
              txn.Write(table, tn, to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          stage.store(attempts * 10 + 4, std::memory_order_relaxed);
          const Status cs = txn.Commit();
          if (cs == Status::kOk) {
            ++done;
          } else if (cs == Status::kMigrating) {
            // The write drain raced our admission check; wait it out.
            ctx->Charge(route_backoff.NextDelay(&rng));
          }
        }
        // A surviving worker flushes its group-commit window before leaving;
        // a worker parked for the kill does not (fail-stop takes it as-is —
        // exactly the mid-window state recovery must handle).
        const bool parked =
            kill_ns != ~0ull && ctx->clock.now_ns() + kKillMarginNs >= kill_ns;
        if (replicator != nullptr && !parked) {
          replicator->FlushLog(ctx);
        }
        committed.fetch_add(done);
        running.fetch_sub(1);
        if (membership != nullptr) {
          gate.Done(worker_gate[n * shape.workers + w]);
        }
      });
    }
  }
  // Live-migration control thread: once the workers have built up virtual
  // time, move a seed-derived partition to a seed-derived destination while
  // they keep committing; odd seeds then move it back. Faults are NOT
  // consulted — a kill or freeze landing mid-flight must be absorbed by the
  // migration's own commit-or-rollback machinery.
  std::thread migration_thread;
  if (migrator != nullptr) {
    migration_thread = std::thread([&] {
      FastRand mrng(opt.seed * 0x9e3779b97f4a7c15ull + 0x6d19);
      const uint32_t part = static_cast<uint32_t>(mrng.Uniform(nodes));
      const uint32_t dst =
          (part + 1 + static_cast<uint32_t>(mrng.Uniform(nodes - 1))) % nodes;
      const uint64_t launch_ns = 40'000 + mrng.Uniform(40'000);
      // Wait (in real time) for some worker clock to pass the launch instant;
      // the workers finishing first is fine — the migration then runs against
      // a quiet cluster and the sweeps audit the moved placement all the same.
      // drtmr-lint: allow(wallclock): bounds a wait on real worker threads; result unaffected
      const auto launch_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (running.load(std::memory_order_relaxed) > 0 &&
             // drtmr-lint: allow(wallclock): bounds a wait on real worker threads
             std::chrono::steady_clock::now() < launch_deadline) {
        uint64_t frontier = 0;
        for (uint32_t i = 0; i < nodes; ++i) {
          frontier = std::max(frontier, cluster.node(i)->context(0)->clock.now_ns());
        }
        if (frontier >= launch_ns) {
          break;
        }
        std::this_thread::yield();
      }
      const rep::MigrationReport r1 = migrator->MigratePartition(part, dst);
      if (r1.status == Status::kOk && (opt.seed & 1) != 0) {
        (void)migrator->MigratePartition(part, r1.source);
      }
    });
  }
  std::thread monitor;
  std::atomic<bool> monitor_stop{false};
  if (debug) {
    monitor = std::thread([&] {
      while (!monitor_stop.load()) {
        std::this_thread::sleep_for(std::chrono::seconds(2));
        std::ostringstream os;
        os << "[torture] running=" << running.load() << " committed=" << committed.load()
           << " stages:";
        for (uint32_t i = 0; i < nodes * shape.workers; ++i) {
          os << " " << dbg_stage[i]->load();
        }
        std::fprintf(stderr, "%s\n", os.str().c_str());
      }
    });
  }
  // Read-only auditors on each node's extra worker slot: any committed
  // snapshot must observe the conserved total.
  std::vector<std::thread> auditors;
  for (uint32_t n = 0; n < nodes; ++n) {
    const uint64_t kill_ns = plan.KillTimeOf(n);
    auditors.emplace_back([&, n, kill_ns] {
      sim::ThreadContext* ctx = cluster.node(n)->context(shape.workers);
      txn::Transaction ro(&engine, ctx);
      while (running.load(std::memory_order_relaxed) > 0) {
        if (kill_ns != ~0ull && ctx->clock.now_ns() + kKillMarginNs >= kill_ns) {
          break;
        }
        ro.Begin(true);
        int64_t sum = 0;
        bool readable = true;
        for (uint32_t p = 0; p < nodes && readable; ++p) {
          for (uint64_t i = 0; i < shape.keys_per_node && readable; ++i) {
            Cell c{};
            readable = ro.Read(table, pmap.node_of(p), KeyOf(p, i), &c) == Status::kOk;
            sum += c.value;
            // A full snapshot spans tens of microseconds of virtual time;
            // under the no-oracle gate, sync mid-snapshot so the auditor's
            // clock cannot outrun its own lease renewals (no-op without a
            // gate; blocking mid-transaction is safe — versions are
            // re-validated at commit).
            cluster.SyncGate(&ctx->clock);
          }
        }
        if (!readable) {
          ro.UserAbort();
          std::this_thread::yield();
          continue;
        }
        if (ro.Commit() == Status::kOk) {
          audits.fetch_add(1);
          if (sum != total) {
            flag("auditor snapshot sum " + std::to_string(sum) + " != " +
                 std::to_string(total));
          }
        }
      }
      if (membership != nullptr) {
        gate.Done(auditor_gate[n]);
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }
  for (auto& t : auditors) {
    t.join();
  }
  if (migration_thread.joinable()) {
    migration_thread.join();
  }
  if (migrator != nullptr) {
    result.migrations = migrator->migrations_started();
    result.migrations_committed = migrator->migrations_committed();
    result.migrations_rolled_back = migrator->migrations_rolled_back();
  }
  if (monitor.joinable()) {
    monitor_stop.store(true);
    monitor.join();
  }

  uint64_t post_committed = 0;
  if (opt.no_oracle) {
    // Nothing here tells the membership layer what the plan did: detection,
    // fencing, re-hosting and rejoin all already happened (or are happening)
    // on its own threads. Formalize the kill (the victim's workers parked
    // before the instant; the plan already made it unreachable), then wait in
    // real time — virtual time keeps advancing through the membership
    // threads — until the view settles: every live node a member, the victim
    // out, and every suspicion matched by a completed recovery.
    if (result.killed) {
      cluster.Kill(victim);
    }
    // drtmr-lint: allow(wallclock): settle-wait watchdog on real membership threads
    const auto wait_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    bool settled = false;
    if (debug) std::fprintf(stderr, "[torture] settle-wait begin\n");
    // drtmr-lint: allow(wallclock): settle-wait watchdog on real membership threads
    while (std::chrono::steady_clock::now() < wait_deadline) {
      const cluster::ClusterView v = coordinator.view();
      bool live_ok = true;
      for (uint32_t i = 0; i < nodes; ++i) {
        if (i != victim && !v.Contains(i)) {
          live_ok = false;
          break;
        }
      }
      if (live_ok && !(result.killed && v.Contains(victim)) &&
          membership->suspicions() == membership->recoveries()) {
        settled = true;
        break;
      }
      std::this_thread::yield();
    }
    result.suspicions = membership->suspicions();
    result.epoch_changes = membership->epoch_changes();
    result.rejoins = membership->rejoins();
    result.recoveries = membership->recoveries();
    result.recovered_records = auto_rehosted.load();
    if (debug) {
      std::fprintf(stderr, "[torture] settled=%d susp=%llu rec=%llu epoch=%llu\n",
                   settled ? 1 : 0, (unsigned long long)result.suspicions,
                   (unsigned long long)result.recoveries,
                   (unsigned long long)coordinator.epoch());
    }
    if (!settled) {
      flag("membership failed to settle: epoch " + std::to_string(coordinator.epoch()) +
           ", " + std::to_string(result.suspicions) + " suspicions, " +
           std::to_string(result.recoveries) + " recoveries, " +
           std::to_string(result.rejoins) + " rejoins");
    }
    if (result.killed) {
      if (result.suspicions == 0) {
        flag("kill plan ran but the failure detector never fired");
      }
      if (result.recoveries == 0) {
        flag("kill plan ran but no automatic recovery happened");
      }
      if (pmap.node_of(victim) == victim) {
        flag("victim partition was never re-hosted");
      } else {
        // Prove the pipeline end to end: with the membership layer still
        // running (leases must stay fresh for commit admission), brand-new
        // transactions against the auto-re-hosted partition must commit.
        const uint32_t host = pmap.node_of(victim);
        sim::ThreadContext* ctx = cluster.node(host)->context(0);
        txn::Transaction txn(&engine, ctx);
        FastRand rng(opt.seed ^ 0xdead5eedull);
        uint64_t attempts = 0;
        for (uint64_t i = 0; i < 20 && attempts < 400; ++i) {
          const uint64_t from = KeyOf(victim, rng.Uniform(shape.keys_per_node));
          uint32_t tp = static_cast<uint32_t>(rng.Uniform(nodes));
          uint64_t to = KeyOf(tp, rng.Uniform(shape.keys_per_node));
          if (to == from) {
            continue;
          }
          while (attempts < 400) {
            ++attempts;
            txn.Begin();
            Cell a{}, b{};
            if (txn.Read(table, pmap.node_of(victim), from, &a) != Status::kOk ||
                txn.Read(table, pmap.node_of(tp), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            a.value -= 3;
            b.value += 3;
            if (txn.Write(table, pmap.node_of(victim), from, &a) != Status::kOk ||
                txn.Write(table, pmap.node_of(tp), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              ++post_committed;
              break;
            }
          }
        }
        if (post_committed == 0) {
          flag("no transaction committed against the auto-re-hosted partition");
        }
      }
    }
    if (debug) std::fprintf(stderr, "[torture] burst done post=%llu, stopping membership\n",
                            (unsigned long long)post_committed);
    membership->Stop();
    cluster.set_time_gate(nullptr);
    if (debug) std::fprintf(stderr, "[torture] membership stopped\n");
  }

  // Oracle-scripted fail-stop + recovery (legacy mode): commit a
  // configuration without the victim, re-host its partition on a survivor,
  // then prove the re-hosted partition serves transactions (all still
  // recorded and checked).
  if (result.killed && !opt.no_oracle) {
    const uint32_t host = (victim + 1) % nodes;
    cluster.Kill(victim);
    coordinator.Remove(victim);
    if (replicator != nullptr) {
      rep::RecoveryManager rm(&engine, replicator.get(), &coordinator);
      const rep::RecoveryReport report =
          rm.RecoverAfterFailure(cluster.node(host)->tool_context(), victim, host, &pmap);
      result.recovered_records = report.records_rehosted;
      if (report.records_rehosted < shape.keys_per_node) {
        flag("recovery rehosted " + std::to_string(report.records_rehosted) + " < " +
             std::to_string(shape.keys_per_node) + " records");
      }

      sim::ThreadContext* ctx = cluster.node(host)->context(0);
      txn::Transaction txn(&engine, ctx);
      FastRand rng(opt.seed ^ 0xdead5eedull);
      uint64_t attempts = 0;
      for (uint64_t i = 0; i < 20 && attempts < 400; ++i) {
        // Always touch the re-hosted partition on one side.
        const uint64_t from = KeyOf(victim, rng.Uniform(shape.keys_per_node));
        uint32_t tp = static_cast<uint32_t>(rng.Uniform(nodes));
        uint64_t to = KeyOf(tp, rng.Uniform(shape.keys_per_node));
        if (to == from) {
          continue;
        }
        while (attempts < 400) {
          ++attempts;
          txn.Begin();
          Cell a{}, b{};
          if (txn.Read(table, pmap.node_of(victim), from, &a) != Status::kOk ||
              txn.Read(table, pmap.node_of(tp), to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          a.value -= 3;
          b.value += 3;
          if (txn.Write(table, pmap.node_of(victim), from, &a) != Status::kOk ||
              txn.Write(table, pmap.node_of(tp), to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          if (txn.Commit() == Status::kOk) {
            ++post_committed;
            break;
          }
        }
      }
      if (post_committed == 0) {
        flag("no transaction committed against the re-hosted partition");
      }
      // One final audited snapshot through the transaction layer.
      txn::Transaction ro(&engine, ctx);
      for (uint32_t attempt = 0; attempt < 50; ++attempt) {
        ro.Begin(true);
        int64_t sum = 0;
        bool readable = true;
        for (uint32_t p = 0; p < nodes && readable; ++p) {
          for (uint64_t i = 0; i < shape.keys_per_node && readable; ++i) {
            Cell c{};
            readable = ro.Read(table, pmap.node_of(p), KeyOf(p, i), &c) == Status::kOk;
            sum += c.value;
          }
        }
        if (!readable) {
          ro.UserAbort();
          continue;
        }
        if (ro.Commit() == Status::kOk) {
          audits.fetch_add(1);
          if (sum != total) {
            flag("post-recovery snapshot sum " + std::to_string(sum) + " != " +
                 std::to_string(total));
          }
          break;
        }
      }
    } else {
      flag("kill plan on an unreplicated shape: nothing to recover from");
    }
  }

  HistoryRecorder::Global().Enable(false);
  result.committed = committed.load() + post_committed;
  result.audits = audits.load();

  // Drain every surviving node's log rings so the backup-convergence audit
  // below sees final state, not pump lag.
  if (replicator != nullptr) {
    for (uint32_t n = 0; n < nodes; ++n) {
      if (result.killed && n == victim) {
        continue;
      }
      replicator->DrainNode(cluster.node(n)->tool_context(), n);
    }
  }

  // Quiescent sweep: conservation, no leaked locks (a lock owned by the dead
  // machine may linger until touched — passive release), committable seqs.
  // The leak rule itself is ProtocolAnalyzer::QuiescentLockLeaked, shared
  // with the analyzer's shadow sweep below: a lock owned by a dead machine
  // may linger until touched (passive release), and a fenced zombie's unlock
  // CAS was rejected by the fabric, so locks held by any ever-suspected node
  // are expected debris, not a hygiene bug.
  const ProtocolAnalyzer::LockExempt lock_exempt = [&](uint32_t owner) {
    return (result.killed && owner == victim) ||
           (membership != nullptr && owner < nodes && membership->was_suspected(owner));
  };
  int64_t final_total = 0;
  for (uint32_t p = 0; p < nodes; ++p) {
    const uint32_t n = pmap.node_of(p);
    for (uint64_t i = 0; i < shape.keys_per_node; ++i) {
      const uint64_t off = table->hash(n)->Lookup(nullptr, KeyOf(p, i));
      if (off == store::HashStore::kNoRecord) {
        flag("partition " + std::to_string(p) + " key " + std::to_string(i) +
             " unreachable at quiescence");
        continue;
      }
      std::vector<std::byte> rec(table->record_bytes());
      cluster.node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      Cell c{};
      store::RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
      final_total += c.value;
      const uint64_t lock = store::RecordLayout::GetLock(rec.data());
      if (ProtocolAnalyzer::QuiescentLockLeaked(lock, lock_exempt)) {
        flag("leaked lock on partition " + std::to_string(p) + " key " + std::to_string(i));
      }
      if (replication && store::RecordLayout::GetSeq(rec.data()) % 2 != 0) {
        flag("odd (uncommitted) seq at quiescence on partition " + std::to_string(p) +
             " key " + std::to_string(i));
      }
      // Backup convergence (the watermark contract, DESIGN.md §13): after the
      // drain, a backup copy can never be AHEAD of its primary — only decided,
      // committed slots may be applied, and every committed seq is write-back
      // visible at quiescence. And a seq names a unique committed image, so an
      // equal-seq copy must carry the identical value. A speculative or
      // aborted image leaking past the watermark breaks one of the two.
      if (replicator != nullptr) {
        const uint64_t primary_seq = store::RecordLayout::GetSeq(rec.data());
        // A record's backup ring lives under its primary's name: the
        // seed-time ring under p, and — after a committed live migration or
        // an automatic re-host — a re-seeded ring under the current owner n.
        // Audit both; a ring frozen at drain time must never be ahead of the
        // primary either, and an equal seq still names a unique image.
        const uint32_t homes[2] = {p, n};
        for (uint32_t h = 0; h < (n == p ? 1u : 2u); ++h) {
          const uint32_t home = homes[h];
          for (uint32_t r = 1; r < shape.replicas; ++r) {
            const uint32_t b = cluster.BackupOf(home, r);
            if (b == n || (result.killed && b == victim)) {
              continue;
            }
            std::vector<std::byte> img;
            if (!replicator->backup_store(b)->Get(kTableId, home, KeyOf(p, i), &img)) {
              continue;
            }
            const uint64_t backup_seq = store::RecordLayout::GetSeq(img.data());
            if (backup_seq > primary_seq) {
              flag("backup " + std::to_string(b) + " (ring of " + std::to_string(home) +
                   ") ahead of primary on partition " + std::to_string(p) + " key " +
                   std::to_string(i) + " (seq " + std::to_string(backup_seq) + " > " +
                   std::to_string(primary_seq) + "): an undecided or aborted image was applied");
            } else if (backup_seq == primary_seq) {
              Cell bc{};
              store::RecordLayout::GatherValue(img.data(), &bc, sizeof(bc));
              if (bc.value != c.value) {
                flag("backup " + std::to_string(b) + " (ring of " + std::to_string(home) +
                     ") diverges at seq " + std::to_string(backup_seq) + " on partition " +
                     std::to_string(p) + " key " + std::to_string(i) + ": backup value " +
                     std::to_string(bc.value) + " != committed " + std::to_string(c.value));
              }
            }
          }
        }
      }
    }
  }
  if (final_total != total) {
    flag("final balance sum " + std::to_string(final_total) + " != " + std::to_string(total));
  }

  const std::vector<TxnRec> history = HistoryRecorder::Global().Collect();
  if (history.size() != result.committed + result.audits) {
    flag("history records " + std::to_string(history.size()) + " != commits " +
         std::to_string(result.committed + result.audits));
  }
  CheckOptions copts;
  copts.version_step = replication ? 2 : 1;
  // Committed transactions are always fully recorded (the committing worker
  // survives by construction: victims park before the kill instant and verb
  // failures after the local-apply point are absorbed by replication), so the
  // history is complete even in kill runs.
  copts.expect_complete = true;
  result.check = CheckSerializability(history, copts);

  if (opt.analyze) {
    // Shadow-side sweep with the same leak rule as the real-memory sweep
    // above, except the victim's whole bus is excluded (debris by design).
    if (result.killed && victim != sim::FaultPlan::kAnyNode) {
      analyzer.MarkBusDead(cluster.node(victim)->bus());
    }
    analyzer.SweepLocks(lock_exempt);
    analyzer.Enable(false);
    result.violations = analyzer.total_violations();
    if (result.violations != 0) {
      std::string classes;
      for (size_t i = 0; i < kNumViolationClasses; ++i) {
        const auto c = static_cast<ViolationClass>(i);
        if (analyzer.violations(c) != 0) {
          classes += std::string(classes.empty() ? "" : " ") + ViolationClassName(c) + "=" +
                     std::to_string(analyzer.violations(c));
        }
      }
      flag("protocol analyzer flagged " + std::to_string(result.violations) +
           " violation(s): " + classes);
    }
  }

  result.ok = result.check.ok && result.errors.empty();
  cluster.SetFaultPlan(nullptr);
  engine.StopServices();
  return result;
}

}  // namespace drtmr::chk
