#include "src/store/hash_store.h"

#include <cstring>
#include <vector>

#include "src/chk/protocol_analyzer.h"
#include "src/util/logging.h"

namespace drtmr::store {

namespace {
constexpr uint64_t kSlotBase = 16;  // byte offset of slot 0 within a bucket
constexpr uint64_t KeySlotOff(uint32_t i) { return kSlotBase + i * 16; }
constexpr uint64_t OffSlotOff(uint32_t i) { return kSlotBase + i * 16 + 8; }
}  // namespace

HashStore::HashStore(cluster::Node* node, uint64_t nbuckets, uint32_t value_size)
    : node_(node), nbuckets_(nbuckets), value_size_(value_size) {
  buckets_off_ = node->allocator()->Alloc(nbuckets * kCacheLineSize);
  DRTMR_CHECK(buckets_off_ != cluster::RegionAllocator::kInvalidOffset)
      << "out of registered memory for bucket array";
  // Region memory is zero-initialized, so all buckets start empty.
}

void HashStore::LoadBucket(sim::ThreadContext* ctx, uint64_t off, BucketImage* img) {
  // One line, one stripe: the load is atomic w.r.t. HTM commits and RDMA
  // writes, so a scanned bucket is never torn.
  node_->bus()->Read(ctx, off, img, sizeof(*img));
}

uint64_t HashStore::Lookup(sim::ThreadContext* ctx, uint64_t key) {
  uint64_t bucket = BucketOffset(key);
  BucketImage img;
  while (bucket != 0) {
    LoadBucket(ctx, bucket, &img);
    for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
      if (img.slots[i].key == key) {
        return img.slots[i].offset;
      }
    }
    bucket = img.next;
  }
  return kNoRecord;
}

uint64_t HashStore::AllocOverflowBucket() {
  const uint64_t off = node_->allocator()->Alloc(kCacheLineSize);
  DRTMR_CHECK(off != cluster::RegionAllocator::kInvalidOffset) << "out of memory for overflow";
  // Freshly allocated memory may be recycled: zero it through the bus so
  // concurrent readers never see stale slots once linked.
  std::byte zero[kCacheLineSize] = {};
  // drtmr-lint: allow(registered-memory): zeroing memory not yet linked/visible to any reader
  node_->bus()->Write(nullptr, off, zero, sizeof(zero));
  return off;
}

Status HashStore::Insert(sim::ThreadContext* ctx, uint64_t key, const void* value,
                         uint64_t* offset_out) {
  DRTMR_CHECK(key != 0) << "key 0 is reserved for empty slots";
  std::lock_guard<std::mutex> g(mutate_mu_);

  // Prepare the record outside the HTM region (it is private until linked).
  const size_t rec_bytes = record_bytes();
  const uint64_t rec_off = node_->allocator()->Alloc(rec_bytes);
  if (rec_off == cluster::RegionAllocator::kInvalidOffset) {
    return Status::kCapacity;
  }
  std::vector<std::byte> image(rec_bytes);
  // Incarnation and seq start even (committable). A recycled record slot must
  // keep its incarnation moving forward, otherwise a reader that captured the
  // pre-free incarnation could validate against the reincarnated record (ABA).
  uint64_t prev_inc = 0;
  node_->bus()->Read(nullptr, rec_off + RecordLayout::kIncOff, &prev_inc, sizeof(prev_inc));
  const uint64_t inc = prev_inc == 0 ? 2 : ((prev_inc + 2) & ~1ull);
  RecordLayout::Init(image.data(), key, inc, /*seq=*/2, value, value_size_);
  node_->bus()->Write(ctx, rec_off, image.data(), rec_bytes);
  if (ctx != nullptr) {
    ctx->Charge(node_->htm()->cost()->record_logic_ns);
  }

  // Publish the slot inside an HTM region (§4.3: inserts execute within an
  // HTM transaction on the hosting machine). Retried on conflict aborts from
  // concurrent readers; mutators are serialized by mutate_mu_. The whole
  // chain must be scanned for the key before reusing a freed slot — a
  // duplicate may live in an overflow bucket past the first free slot.
  while (true) {
    sim::HtmTxn* htm = node_->htm()->Begin(ctx, obs::HtmSite::kStore);
    DRTMR_CHECK(htm != nullptr) << "insert called inside an HTM region";
    uint64_t bucket = BucketOffset(key);
    uint64_t free_bucket = 0;
    int free_slot = -1;
    uint64_t last_bucket = bucket;
    bool retry = false;
    bool exists = false;
    while (bucket != 0 && !retry) {
      BucketImage img;
      if (htm->Read(bucket, &img, sizeof(img)) != Status::kOk) {
        retry = true;
        break;
      }
      for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        if (img.slots[i].key == key) {
          exists = true;
          break;
        }
        if (img.slots[i].key == 0 && free_slot < 0) {
          free_bucket = bucket;
          free_slot = static_cast<int>(i);
        }
      }
      if (exists) {
        break;
      }
      last_bucket = bucket;
      bucket = img.next;
    }
    if (retry) {
      continue;
    }
    if (exists) {
      htm->Abort();
      node_->allocator()->Free(rec_off, rec_bytes);
      return Status::kExists;
    }
    if (free_slot >= 0) {
      const uint32_t i = static_cast<uint32_t>(free_slot);
      if (htm->WriteU64(free_bucket + OffSlotOff(i), rec_off) == Status::kOk &&
          htm->WriteU64(free_bucket + KeySlotOff(i), key) == Status::kOk &&
          htm->Commit() == Status::kOk) {
        if (chk::AnalyzerEnabled()) {
          chk::ProtocolAnalyzer::Global().RegisterRecord(node_->bus(), rec_off, value_size_,
                                                         image.data());
        }
        if (offset_out != nullptr) {
          *offset_out = rec_off;
        }
        return Status::kOk;
      }
      continue;
    }
    // Chain a fresh overflow bucket and place the key in its first slot.
    const uint64_t ovf = AllocOverflowBucket();
    if (htm->WriteU64(ovf + KeySlotOff(0), key) == Status::kOk &&
        htm->WriteU64(ovf + OffSlotOff(0), rec_off) == Status::kOk &&
        htm->WriteU64(last_bucket + 0, ovf) == Status::kOk && htm->Commit() == Status::kOk) {
      if (chk::AnalyzerEnabled()) {
        chk::ProtocolAnalyzer::Global().RegisterRecord(node_->bus(), rec_off, value_size_,
                                                       image.data());
      }
      if (offset_out != nullptr) {
        *offset_out = rec_off;
      }
      return Status::kOk;
    }
    node_->allocator()->Free(ovf, kCacheLineSize);
  }
}

Status HashStore::Remove(sim::ThreadContext* ctx, uint64_t key) {
  std::lock_guard<std::mutex> g(mutate_mu_);
  while (true) {
    sim::HtmTxn* htm = node_->htm()->Begin(ctx, obs::HtmSite::kStore);
    DRTMR_CHECK(htm != nullptr) << "remove called inside an HTM region";
    uint64_t bucket = BucketOffset(key);
    bool retry = false;
    while (true) {
      BucketImage img;
      if (htm->Read(bucket, &img, sizeof(img)) != Status::kOk) {
        retry = true;
        break;
      }
      int found = -1;
      for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        if (img.slots[i].key == key) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found >= 0) {
        const uint32_t i = static_cast<uint32_t>(found);
        const uint64_t rec_off = img.slots[i].offset;
        // Bump the incarnation so in-flight transactions that read this
        // record fail commit-time validation (§4.3); then unlink.
        uint64_t inc;
        if (htm->ReadU64(rec_off + RecordLayout::kIncOff, &inc) != Status::kOk ||
            htm->WriteU64(rec_off + RecordLayout::kIncOff, inc + 1) != Status::kOk ||
            htm->WriteU64(bucket + KeySlotOff(i), 0) != Status::kOk ||
            htm->WriteU64(bucket + OffSlotOff(i), 0) != Status::kOk ||
            htm->Commit() != Status::kOk) {
          retry = true;
          break;
        }
        // Drop the analyzer's shadow before the offset can be recycled.
        if (chk::AnalyzerEnabled()) {
          chk::ProtocolAnalyzer::Global().UnregisterRecord(node_->bus(), rec_off);
        }
        node_->allocator()->Free(rec_off, record_bytes());
        return Status::kOk;
      }
      if (img.next == 0) {
        htm->Abort();
        return Status::kNotFound;
      }
      bucket = img.next;
    }
    if (retry) {
      continue;
    }
  }
}

Status HashStore::InsertImage(sim::ThreadContext* ctx, uint64_t key, const std::byte* image,
                              size_t len) {
  DRTMR_CHECK(len == record_bytes());
  std::lock_guard<std::mutex> g(mutate_mu_);
  const uint64_t existing = Lookup(ctx, key);
  if (existing != kNoRecord) {
    std::vector<std::byte> cur(8);
    uint64_t cur_seq = 0;
    node_->bus()->Read(ctx, existing + RecordLayout::kSeqOff, &cur_seq, sizeof(cur_seq));
    if (RecordLayout::GetSeq(image) > cur_seq) {
      // Recovery/bootstrap overwrite of a quiescent record: a sanctioned
      // whole-image writer, not an unlocked-write violation.
      chk::ScopedPrivilegedWriter priv;
      node_->bus()->Write(ctx, existing, image, len);
    }
    return Status::kOk;
  }
  const uint64_t rec_off = node_->allocator()->Alloc(len);
  if (rec_off == cluster::RegionAllocator::kInvalidOffset) {
    return Status::kCapacity;
  }
  node_->bus()->Write(ctx, rec_off, image, len);
  // Publish through the same HTM path as Insert.
  while (true) {
    sim::HtmTxn* htm = node_->htm()->Begin(ctx, obs::HtmSite::kStore);
    DRTMR_CHECK(htm != nullptr);
    uint64_t bucket = BucketOffset(key);
    bool retry = false;
    bool done = false;
    while (!done) {
      BucketImage img;
      if (htm->Read(bucket, &img, sizeof(img)) != Status::kOk) {
        retry = true;
        break;
      }
      int free_slot = -1;
      for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        if (img.slots[i].key == 0 && free_slot < 0) {
          free_slot = static_cast<int>(i);
        }
      }
      if (free_slot >= 0) {
        const uint32_t i = static_cast<uint32_t>(free_slot);
        if (htm->WriteU64(bucket + OffSlotOff(i), rec_off) != Status::kOk ||
            htm->WriteU64(bucket + KeySlotOff(i), key) != Status::kOk ||
            htm->Commit() != Status::kOk) {
          retry = true;
        }
        done = true;
        break;
      }
      if (img.next != 0) {
        bucket = img.next;
        continue;
      }
      const uint64_t ovf = AllocOverflowBucket();
      if (htm->WriteU64(ovf + KeySlotOff(0), key) != Status::kOk ||
          htm->WriteU64(ovf + OffSlotOff(0), rec_off) != Status::kOk ||
          htm->WriteU64(bucket + 0, ovf) != Status::kOk || htm->Commit() != Status::kOk) {
        node_->allocator()->Free(ovf, kCacheLineSize);
        retry = true;
      }
      done = true;
    }
    if (!retry) {
      if (chk::AnalyzerEnabled()) {
        chk::ProtocolAnalyzer::Global().RegisterRecord(node_->bus(), rec_off, value_size_, image);
      }
      return Status::kOk;
    }
  }
}

void HashStore::ForEachKey(const std::function<void(uint64_t key, uint64_t offset)>& fn) {
  std::lock_guard<std::mutex> g(mutate_mu_);
  for (uint64_t b = 0; b < nbuckets_; ++b) {
    uint64_t bucket = buckets_off_ + b * kCacheLineSize;
    BucketImage img;
    while (bucket != 0) {
      LoadBucket(nullptr, bucket, &img);
      for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        if (img.slots[i].key != 0) {
          fn(img.slots[i].key, img.slots[i].offset);
        }
      }
      bucket = img.next;
    }
  }
}

uint64_t HashStore::RemoteLookup(sim::ThreadContext* ctx, sim::RdmaNic* nic, uint32_t target_node,
                                 uint64_t key, uint32_t* rdma_reads) {
  uint64_t bucket = BucketOffset(key);
  uint32_t reads = 0;
  BucketImage img;
  uint64_t result = kNoRecord;
  while (bucket != 0) {
    if (nic->Read(ctx, target_node, bucket, &img, sizeof(img)) != Status::kOk) {
      break;
    }
    reads++;
    bool next = false;
    for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
      if (img.slots[i].key == key) {
        result = img.slots[i].offset;
        break;
      }
    }
    if (result == kNoRecord && img.next != 0) {
      bucket = img.next;
      next = true;
    }
    if (!next) {
      break;
    }
  }
  if (rdma_reads != nullptr) {
    *rdma_reads = reads;
  }
  return result;
}

}  // namespace drtmr::store
