// Typed tables over the memory-store layer (§4.2): a Table owns one store
// shard per node (symmetric layout). Hash tables are remotely accessible via
// one-sided RDMA; B+-tree tables are local-only ordered stores. The
// LocationCache is DrTM's RDMA-friendly, host-transparent cache mapping keys
// to remote record offsets, verified on use against the key embedded in the
// record and its incarnation.
#ifndef DRTMR_SRC_STORE_TABLE_H_
#define DRTMR_SRC_STORE_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/node.h"
#include "src/store/btree_store.h"
#include "src/store/hash_store.h"
#include "src/util/logging.h"

namespace drtmr::store {

enum class StoreKind { kHash, kBTree };

struct TableOptions {
  uint32_t value_size = 64;
  StoreKind kind = StoreKind::kHash;
  uint64_t hash_buckets = 1 << 14;  // per node, hash tables only
  // §6.4 pointer-swap optimization: local-only tables whose HTM write set is
  // reduced to one line by swapping a payload pointer instead of overwriting
  // payload bytes. Applied by the transaction layer.
  bool ptr_swap = false;
};

class Table {
 public:
  Table(cluster::Cluster* cluster, uint32_t id, const TableOptions& options)
      : id_(id), options_(options) {
    const uint32_t n = cluster->num_nodes();
    if (options.kind == StoreKind::kHash) {
      hash_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        hash_.push_back(std::make_unique<HashStore>(cluster->node(i), options.hash_buckets,
                                                    options.value_size));
        DRTMR_CHECK(hash_[i]->buckets_offset() == hash_[0]->buckets_offset())
            << "asymmetric table layout: create tables identically on all nodes";
      }
    } else {
      btree_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        btree_.push_back(std::make_unique<BTreeStore>());
        nodes_.push_back(cluster->node(i));
      }
    }
    if (options.kind == StoreKind::kHash) {
      for (uint32_t i = 0; i < n; ++i) {
        nodes_.push_back(cluster->node(i));
      }
    }
  }

  uint32_t id() const { return id_; }
  uint32_t value_size() const { return options_.value_size; }
  size_t record_bytes() const { return RecordLayout::BytesFor(options_.value_size); }
  StoreKind kind() const { return options_.kind; }
  bool ptr_swap() const { return options_.ptr_swap; }
  bool remote_accessible() const { return options_.kind == StoreKind::kHash; }

  HashStore* hash(uint32_t node) { return hash_[node].get(); }
  BTreeStore* btree(uint32_t node) { return btree_[node].get(); }
  cluster::Node* node(uint32_t id) { return nodes_[id]; }

  // Local key -> record offset on `node_id` (either store kind).
  uint64_t Lookup(sim::ThreadContext* ctx, uint32_t node_id, uint64_t key) {
    if (options_.kind == StoreKind::kHash) {
      return hash_[node_id]->Lookup(ctx, key);
    }
    return btree_[node_id]->Lookup(ctx, key);
  }

 private:
  uint32_t id_;
  TableOptions options_;
  std::vector<std::unique_ptr<HashStore>> hash_;
  std::vector<std::unique_ptr<BTreeStore>> btree_;
  std::vector<cluster::Node*> nodes_;
};

class Catalog {
 public:
  explicit Catalog(cluster::Cluster* cluster) : cluster_(cluster) {}

  Table* CreateTable(uint32_t id, const TableOptions& options) {
    DRTMR_CHECK(tables_.find(id) == tables_.end()) << "duplicate table id " << id;
    auto t = std::make_unique<Table>(cluster_, id, options);
    Table* raw = t.get();
    tables_[id] = std::move(t);
    return raw;
  }

  Table* table(uint32_t id) {
    auto it = tables_.find(id);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  cluster::Cluster* cluster() { return cluster_; }

 private:
  cluster::Cluster* cluster_;
  std::unordered_map<uint32_t, std::unique_ptr<Table>> tables_;
};

// Per-worker cache of remote record locations (table, node, key) -> offset.
// Entries are hints: users must verify the record's embedded key (and
// incarnation at commit) and call Invalidate on mismatch.
class LocationCache {
 public:
  uint64_t Get(uint32_t table, uint32_t node, uint64_t key) const {
    const auto it = map_.find(Slot(table, node, key));
    return it == map_.end() ? 0 : it->second;
  }

  void Put(uint32_t table, uint32_t node, uint64_t key, uint64_t offset) {
    map_[Slot(table, node, key)] = offset;
  }

  void Invalidate(uint32_t table, uint32_t node, uint64_t key) { map_.erase(Slot(table, node, key)); }

  size_t size() const { return map_.size(); }

 private:
  static uint64_t Slot(uint32_t table, uint32_t node, uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(table) << 32 | node);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
  }

  std::unordered_map<uint64_t, uint64_t> map_;
};

}  // namespace drtmr::store

#endif  // DRTMR_SRC_STORE_TABLE_H_
