// RDMA-friendly hash table (the DrTM memory store, §6.3). The bucket array
// lives in the node's registered memory at an offset that is identical on
// every node (deterministic table creation), so a remote machine can locate
// any record with one-sided RDMA READs only: hash the key, READ the bucket
// line, scan its slots, follow the overflow chain if needed. Local mutations
// (insert/remove) are protected by HTM regions so concurrent local readers
// and remote one-sided readers always see an atomic bucket line.
//
// Bucket layout (one cache line):
//   next(8B) | reserved(8B) | 3 x { key(8B), record_offset(8B) }
// key == 0 marks an empty slot; record offsets are never 0 (the allocator
// skips offset zero).
#ifndef DRTMR_SRC_STORE_HASH_STORE_H_
#define DRTMR_SRC_STORE_HASH_STORE_H_

#include <cstdint>
#include <functional>
#include <mutex>

#include "src/cluster/node.h"
#include "src/sim/fabric.h"
#include "src/store/record.h"
#include "src/util/status.h"

namespace drtmr::store {

class HashStore {
 public:
  static constexpr uint32_t kSlotsPerBucket = 3;
  static constexpr uint64_t kNoRecord = 0;

  // Allocates the bucket array from the node's region. `nbuckets` must match
  // across nodes for the same table.
  HashStore(cluster::Node* node, uint64_t nbuckets, uint32_t value_size);

  uint64_t buckets_offset() const { return buckets_off_; }
  uint64_t nbuckets() const { return nbuckets_; }
  uint32_t value_size() const { return value_size_; }
  size_t record_bytes() const { return RecordLayout::BytesFor(value_size_); }

  // --- local operations (run on the hosting node) ---

  // Returns the record offset for `key`, or kNoRecord.
  uint64_t Lookup(sim::ThreadContext* ctx, uint64_t key);

  // Allocates and initializes a record (unlocked, incarnation/seq committable)
  // and links it under `key`. kExists if the key is present.
  Status Insert(sim::ThreadContext* ctx, uint64_t key, const void* value, uint64_t* offset_out);

  // Unlinks `key`, bumps the record's incarnation (invalidating concurrent
  // readers per §4.3), and returns the record to the allocator.
  Status Remove(sim::ThreadContext* ctx, uint64_t key);

  // Links a pre-built record image under `key` (recovery: re-hosting a failed
  // node's records from backup copies). If the key already exists, the
  // existing record is overwritten when the image's seq is newer.
  Status InsertImage(sim::ThreadContext* ctx, uint64_t key, const std::byte* image, size_t len);

  // Visits every (key, record offset) linked into this store, holding
  // mutate_mu_ so the slot set is stable for the duration (record *contents*
  // may still change concurrently — callers that need a consistent image use
  // the per-line version check). Migration's bulk copy pass uses this to
  // enumerate a partition's records; it never runs on the transaction hot
  // path, so blocking local mutations for the walk is acceptable.
  void ForEachKey(const std::function<void(uint64_t key, uint64_t offset)>& fn);

  // --- remote operation (run on any node, one-sided RDMA only) ---

  // Resolves `key` on `target_node`; returns kNoRecord if absent. Counts the
  // RDMA READs used in *rdma_reads if non-null (location-cache savings are
  // measured from this).
  uint64_t RemoteLookup(sim::ThreadContext* ctx, sim::RdmaNic* nic, uint32_t target_node,
                        uint64_t key, uint32_t* rdma_reads = nullptr);

 private:
  struct Slot {
    uint64_t key;
    uint64_t offset;
  };
  struct BucketImage {
    uint64_t next;
    uint64_t reserved;
    Slot slots[kSlotsPerBucket];
  };
  static_assert(sizeof(BucketImage) == kCacheLineSize);

  static uint64_t Mix(uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t BucketOffset(uint64_t key) const {
    return buckets_off_ + (Mix(key) % nbuckets_) * kCacheLineSize;
  }

  void LoadBucket(sim::ThreadContext* ctx, uint64_t off, BucketImage* img);
  uint64_t AllocOverflowBucket();

  cluster::Node* node_;
  uint64_t nbuckets_;
  uint32_t value_size_;
  uint64_t buckets_off_;
  std::mutex mutate_mu_;  // serializes local inserts/removes on this table
};

}  // namespace drtmr::store

#endif  // DRTMR_SRC_STORE_HASH_STORE_H_
