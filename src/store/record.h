// Database record layout (paper Fig. 3). Every record starts on a cache-line
// boundary to avoid HTM false aborts (§4.2). Layout:
//
//   line 0:  lock(8B) | incarnation(8B) | seqnum(8B) | key(8B) | payload(32B)
//   line k:  version(2B) | payload(62B)                       (k >= 1)
//
// * lock      — acquired by remote transactions during commit via RDMA CAS;
//               encodes the owner machine id so survivors can release
//               dangling locks after a failure (§5.2).
// * incarnation — bumped by insert/delete to invalidate stale references.
// * seqnum    — bumped on every update; under optimistic replication an odd
//               value means committed-but-unreplicated, even means
//               committable (§5.1, the seqlock idea).
// * version   — low 16 bits of seqnum replicated at the head of every line
//               after the first, letting a one-sided RDMA READ detect a torn
//               multi-line snapshot (§4.3, per FaRM).
//
// Deviation from Fig. 3: we also embed the 8-byte key so that location-cache
// hits can be verified without an extra index probe (DrTM's header carries
// equivalent identifying state).
#ifndef DRTMR_SRC_STORE_RECORD_H_
#define DRTMR_SRC_STORE_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/util/cacheline.h"

namespace drtmr::store {

struct RecordLayout {
  static constexpr uint64_t kLockOff = 0;
  static constexpr uint64_t kIncOff = 8;
  static constexpr uint64_t kSeqOff = 16;
  static constexpr uint64_t kKeyOff = 24;
  static constexpr uint64_t kLine0Payload = 32;
  static constexpr size_t kLine0Cap = kCacheLineSize - kLine0Payload;  // 32 bytes
  static constexpr size_t kLineKCap = kCacheLineSize - 2;              // 62 bytes

  // Total record footprint (line-aligned) for a payload of `value_size`.
  static constexpr size_t BytesFor(size_t value_size) {
    return static_cast<size_t>(LinesFor(value_size)) * kCacheLineSize;
  }

  static constexpr uint32_t LinesFor(size_t value_size) {
    if (value_size <= kLine0Cap) {
      return 1;
    }
    const size_t rest = value_size - kLine0Cap;
    return 1 + static_cast<uint32_t>((rest + kLineKCap - 1) / kLineKCap);
  }

  // --- accessors over a record image in a local buffer ---
  static uint64_t GetLock(const std::byte* rec) { return LoadU64(rec + kLockOff); }
  static uint64_t GetIncarnation(const std::byte* rec) { return LoadU64(rec + kIncOff); }
  static uint64_t GetSeq(const std::byte* rec) { return LoadU64(rec + kSeqOff); }
  static uint64_t GetKey(const std::byte* rec) { return LoadU64(rec + kKeyOff); }
  static void SetLock(std::byte* rec, uint64_t v) { StoreU64(rec + kLockOff, v); }
  static void SetIncarnation(std::byte* rec, uint64_t v) { StoreU64(rec + kIncOff, v); }
  static void SetSeq(std::byte* rec, uint64_t v) { StoreU64(rec + kSeqOff, v); }
  static void SetKey(std::byte* rec, uint64_t v) { StoreU64(rec + kKeyOff, v); }

  // Scatters `value_size` payload bytes into the record image (around the
  // per-line version slots). Does not touch metadata or versions.
  static void ScatterValue(std::byte* rec, const void* value, size_t value_size) {
    const auto* in = static_cast<const std::byte*>(value);
    const size_t n0 = value_size < kLine0Cap ? value_size : kLine0Cap;
    std::memcpy(rec + kLine0Payload, in, n0);
    size_t done = n0;
    uint32_t line = 1;
    while (done < value_size) {
      const size_t n = (value_size - done) < kLineKCap ? (value_size - done) : kLineKCap;
      std::memcpy(rec + line * kCacheLineSize + 2, in + done, n);
      done += n;
      line++;
    }
  }

  static void GatherValue(const std::byte* rec, void* value, size_t value_size) {
    auto* out = static_cast<std::byte*>(value);
    const size_t n0 = value_size < kLine0Cap ? value_size : kLine0Cap;
    std::memcpy(out, rec + kLine0Payload, n0);
    size_t done = n0;
    uint32_t line = 1;
    while (done < value_size) {
      const size_t n = (value_size - done) < kLineKCap ? (value_size - done) : kLineKCap;
      std::memcpy(out + done, rec + line * kCacheLineSize + 2, n);
      done += n;
      line++;
    }
  }

  // Stamps the low 16 bits of `seq` at the head of every line after the
  // first. A record write must refresh these (§4.3).
  static void SetVersions(std::byte* rec, size_t value_size, uint64_t seq) {
    const uint16_t v = static_cast<uint16_t>(seq);
    const uint32_t lines = LinesFor(value_size);
    for (uint32_t line = 1; line < lines; ++line) {
      std::memcpy(rec + line * kCacheLineSize, &v, sizeof(v));
    }
  }

  // A remote snapshot is consistent iff every line's version matches the low
  // 16 bits of the seqnum in line 0 (§4.3, Fig. 6).
  static bool VersionsConsistent(const std::byte* rec, size_t value_size) {
    const uint16_t expect = static_cast<uint16_t>(GetSeq(rec));
    const uint32_t lines = LinesFor(value_size);
    for (uint32_t line = 1; line < lines; ++line) {
      uint16_t v;
      std::memcpy(&v, rec + line * kCacheLineSize, sizeof(v));
      if (v != expect) {
        return false;
      }
    }
    return true;
  }

  // Like VersionsConsistent, but for a whole-record image of known byte size
  // (e.g. a replication-log slot) where the payload size is not at hand: the
  // image is torn iff any line's version disagrees with the seqnum. A crashed
  // writer can leave a slot whose header landed but whose payload lines did
  // not; consumers must refuse to apply such an image (§5.2).
  static bool ImageConsistent(const std::byte* rec, size_t image_bytes) {
    const uint16_t expect = static_cast<uint16_t>(GetSeq(rec));
    const size_t lines = image_bytes / kCacheLineSize;
    for (size_t line = 1; line < lines; ++line) {
      uint16_t v;
      std::memcpy(&v, rec + line * kCacheLineSize, sizeof(v));
      if (v != expect) {
        return false;
      }
    }
    return true;
  }

  // Initializes a fresh record image: unlocked, given incarnation/seq/key,
  // payload scattered, versions stamped.
  static void Init(std::byte* rec, uint64_t key, uint64_t incarnation, uint64_t seq,
                   const void* value, size_t value_size) {
    std::memset(rec, 0, BytesFor(value_size));
    SetLock(rec, 0);
    SetIncarnation(rec, incarnation);
    SetSeq(rec, seq);
    SetKey(rec, key);
    if (value != nullptr) {
      ScatterValue(rec, value, value_size);
    }
    SetVersions(rec, value_size, seq);
  }

 private:
  static uint64_t LoadU64(const std::byte* p) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static void StoreU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
};

// Fused lock bit (§4.4): on NICs with IBV_ATOMIC_GLOB atomicity the lock can
// be encoded in the sequence number, so locking and validating a remote
// record is a single RDMA CAS — expected = the (even, committable) seqnum
// observed at read time, desired = the same value with the top bit set. A
// write-back of the new seqnum clears the bit, making C.5 an implicit unlock
// for written records. The low 16 bits (the per-line version) are unaffected.
struct SeqWord {
  static constexpr uint64_t kLockBit = 1ull << 63;

  static bool Locked(uint64_t seq) { return (seq & kLockBit) != 0; }
  static uint64_t Value(uint64_t seq) { return seq & ~kLockBit; }
  static uint64_t WithLock(uint64_t seq) { return seq | kLockBit; }
};

// Lock word encoding: 0 = unlocked; otherwise the owner's machine id + worker
// id, so a survivor encountering a lock owned by a machine absent from the
// current configuration can release it (passive dangling-lock recovery §5.2).
struct LockWord {
  static constexpr uint64_t kUnlocked = 0;

  static uint64_t Make(uint32_t node, uint32_t worker) {
    return (static_cast<uint64_t>(node + 1) << 32) | (worker + 1);
  }
  static bool IsLocked(uint64_t w) { return w != kUnlocked; }
  static uint32_t OwnerNode(uint64_t w) { return static_cast<uint32_t>(w >> 32) - 1; }
};

}  // namespace drtmr::store

#endif  // DRTMR_SRC_STORE_RECORD_H_
