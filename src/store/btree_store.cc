#include "src/store/btree_store.h"

#include <algorithm>
#include <mutex>
#include <cstring>

#include "src/util/logging.h"

namespace drtmr::store {

struct BTreeStore::Node {
  bool is_leaf;
  int nkeys = 0;
  uint64_t keys[kFanout];

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTreeStore::Inner : BTreeStore::Node {
  // children[i] holds keys < keys[i]; children[nkeys] holds the rest.
  Node* children[kFanout + 1];

  Inner() : Node(false) {}

  int ChildIndex(uint64_t key) const {
    // First separator strictly greater than key.
    int lo = 0, hi = nkeys;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (key < keys[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

struct BTreeStore::Leaf : BTreeStore::Node {
  uint64_t values[kFanout];
  Leaf* next = nullptr;
  Leaf* prev = nullptr;

  Leaf() : Node(true) {}

  int Find(uint64_t key) const {
    int lo = 0, hi = nkeys;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;  // first index with keys[i] >= key (may be nkeys)
  }
};

BTreeStore::BTreeStore() : root_(new Leaf()) {}

void BTreeStore::FreeRec(Node* n) {
  if (!n->is_leaf) {
    auto* in = static_cast<Inner*>(n);
    for (int i = 0; i <= in->nkeys; ++i) {
      FreeRec(in->children[i]);
    }
    delete in;
  } else {
    delete static_cast<Leaf*>(n);
  }
}

BTreeStore::~BTreeStore() { FreeRec(root_); }

BTreeStore::Leaf* BTreeStore::FindLeaf(uint64_t key) const {
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<Inner*>(n);
    n = in->children[in->ChildIndex(key)];
  }
  return static_cast<Leaf*>(n);
}

uint64_t BTreeStore::Lookup(sim::ThreadContext* ctx, uint64_t key) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  const Leaf* leaf = FindLeaf(key);
  const int i = leaf->Find(key);
  if (i < leaf->nkeys && leaf->keys[i] == key) {
    return leaf->values[i];
  }
  return kNoRecord;
}

Status BTreeStore::Insert(sim::ThreadContext* ctx, uint64_t key, uint64_t record_offset) {
  std::unique_lock<std::shared_mutex> g(mu_);

  // Descend, remembering the path for splits.
  std::vector<std::pair<Inner*, int>> path;
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<Inner*>(n);
    const int ci = in->ChildIndex(key);
    path.emplace_back(in, ci);
    n = in->children[ci];
  }
  Leaf* leaf = static_cast<Leaf*>(n);
  int pos = leaf->Find(key);
  if (pos < leaf->nkeys && leaf->keys[pos] == key) {
    return Status::kExists;
  }

  if (leaf->nkeys < kFanout) {
    std::memmove(&leaf->keys[pos + 1], &leaf->keys[pos], (leaf->nkeys - pos) * sizeof(uint64_t));
    std::memmove(&leaf->values[pos + 1], &leaf->values[pos],
                 (leaf->nkeys - pos) * sizeof(uint64_t));
    leaf->keys[pos] = key;
    leaf->values[pos] = record_offset;
    leaf->nkeys++;
    size_++;
    return Status::kOk;
  }

  // Split the leaf.
  Leaf* right = new Leaf();
  const int mid = kFanout / 2;
  right->nkeys = kFanout - mid;
  std::memcpy(right->keys, &leaf->keys[mid], right->nkeys * sizeof(uint64_t));
  std::memcpy(right->values, &leaf->values[mid], right->nkeys * sizeof(uint64_t));
  leaf->nkeys = mid;
  right->next = leaf->next;
  if (right->next != nullptr) {
    right->next->prev = right;
  }
  right->prev = leaf;
  leaf->next = right;

  if (key < right->keys[0]) {
    pos = leaf->Find(key);
    std::memmove(&leaf->keys[pos + 1], &leaf->keys[pos], (leaf->nkeys - pos) * sizeof(uint64_t));
    std::memmove(&leaf->values[pos + 1], &leaf->values[pos],
                 (leaf->nkeys - pos) * sizeof(uint64_t));
    leaf->keys[pos] = key;
    leaf->values[pos] = record_offset;
    leaf->nkeys++;
  } else {
    pos = right->Find(key);
    std::memmove(&right->keys[pos + 1], &right->keys[pos],
                 (right->nkeys - pos) * sizeof(uint64_t));
    std::memmove(&right->values[pos + 1], &right->values[pos],
                 (right->nkeys - pos) * sizeof(uint64_t));
    right->keys[pos] = key;
    right->values[pos] = record_offset;
    right->nkeys++;
  }
  size_++;

  // Propagate the split key upward.
  uint64_t sep = right->keys[0];
  Node* new_child = right;
  while (!path.empty()) {
    auto [parent, ci] = path.back();
    path.pop_back();
    if (parent->nkeys < kFanout) {
      std::memmove(&parent->keys[ci + 1], &parent->keys[ci],
                   (parent->nkeys - ci) * sizeof(uint64_t));
      std::memmove(&parent->children[ci + 2], &parent->children[ci + 1],
                   (parent->nkeys - ci) * sizeof(Node*));
      parent->keys[ci] = sep;
      parent->children[ci + 1] = new_child;
      parent->nkeys++;
      return Status::kOk;
    }
    // Split the inner node. Temporarily assemble nkeys+1 entries.
    uint64_t tmp_keys[kFanout + 1];
    Node* tmp_children[kFanout + 2];
    std::memcpy(tmp_keys, parent->keys, parent->nkeys * sizeof(uint64_t));
    std::memcpy(tmp_children, parent->children, (parent->nkeys + 1) * sizeof(Node*));
    std::memmove(&tmp_keys[ci + 1], &tmp_keys[ci], (parent->nkeys - ci) * sizeof(uint64_t));
    std::memmove(&tmp_children[ci + 2], &tmp_children[ci + 1],
                 (parent->nkeys - ci) * sizeof(Node*));
    tmp_keys[ci] = sep;
    tmp_children[ci + 1] = new_child;
    const int total = parent->nkeys + 1;  // keys now in tmp
    const int lmid = total / 2;           // key index promoted upward

    Inner* rin = new Inner();
    parent->nkeys = lmid;
    std::memcpy(parent->keys, tmp_keys, lmid * sizeof(uint64_t));
    std::memcpy(parent->children, tmp_children, (lmid + 1) * sizeof(Node*));
    rin->nkeys = total - lmid - 1;
    std::memcpy(rin->keys, &tmp_keys[lmid + 1], rin->nkeys * sizeof(uint64_t));
    std::memcpy(rin->children, &tmp_children[lmid + 1], (rin->nkeys + 1) * sizeof(Node*));

    sep = tmp_keys[lmid];
    new_child = rin;
    // Continue upward with (sep, rin); if path is empty we grow the root.
    if (path.empty()) {
      Inner* new_root = new Inner();
      new_root->nkeys = 1;
      new_root->keys[0] = sep;
      new_root->children[0] = parent == root_ ? root_ : parent;
      new_root->children[1] = rin;
      // parent may not be root_ only if path bookkeeping broke.
      DRTMR_CHECK(parent == root_);
      root_ = new_root;
      return Status::kOk;
    }
  }
  // Leaf split with empty path: leaf was the root.
  Inner* new_root = new Inner();
  new_root->nkeys = 1;
  new_root->keys[0] = sep;
  new_root->children[0] = leaf;
  new_root->children[1] = new_child;
  root_ = new_root;
  return Status::kOk;
}

Status BTreeStore::Remove(sim::ThreadContext* ctx, uint64_t key) {
  std::unique_lock<std::shared_mutex> g(mu_);
  Leaf* leaf = FindLeaf(key);
  const int pos = leaf->Find(key);
  if (pos >= leaf->nkeys || leaf->keys[pos] != key) {
    return Status::kNotFound;
  }
  std::memmove(&leaf->keys[pos], &leaf->keys[pos + 1], (leaf->nkeys - pos - 1) * sizeof(uint64_t));
  std::memmove(&leaf->values[pos], &leaf->values[pos + 1],
               (leaf->nkeys - pos - 1) * sizeof(uint64_t));
  leaf->nkeys--;
  size_--;
  // Lazy deletion: leaves are allowed to underflow (standard for in-memory
  // B+-trees under mixed workloads; structure stays correct, only density
  // degrades). Separator keys above remain valid upper bounds.
  return Status::kOk;
}

size_t BTreeStore::Scan(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi,
                        const std::function<bool(uint64_t, uint64_t)>& fn) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  size_t visited = 0;
  const Leaf* leaf = FindLeaf(lo);
  int i = leaf->Find(lo);
  while (leaf != nullptr) {
    for (; i < leaf->nkeys; ++i) {
      if (leaf->keys[i] > hi) {
        return visited;
      }
      visited++;
      if (!fn(leaf->keys[i], leaf->values[i])) {
        return visited;
      }
    }
    leaf = leaf->next;
    i = 0;
  }
  return visited;
}

bool BTreeStore::FirstGreaterEqual(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi,
                                   uint64_t* key_out, uint64_t* offset_out) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  const Leaf* leaf = FindLeaf(lo);
  int i = leaf->Find(lo);
  while (leaf != nullptr) {
    if (i < leaf->nkeys) {
      if (leaf->keys[i] > hi) {
        return false;
      }
      *key_out = leaf->keys[i];
      *offset_out = leaf->values[i];
      return true;
    }
    leaf = leaf->next;
    i = 0;
  }
  return false;
}

bool BTreeStore::LastLessEqual(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi,
                               uint64_t* key_out, uint64_t* offset_out) const {
  std::shared_lock<std::shared_mutex> g(mu_);
  const Leaf* leaf = FindLeaf(hi);
  int i = leaf->Find(hi);
  // i points at the first key >= hi; step back to the last key <= hi.
  const Leaf* cur = leaf;
  if (i < cur->nkeys && cur->keys[i] == hi) {
    if (hi < lo) {
      return false;
    }
    *key_out = cur->keys[i];
    *offset_out = cur->values[i];
    return true;
  }
  while (cur != nullptr) {
    if (i > 0) {
      const uint64_t k = cur->keys[i - 1];
      if (k < lo) {
        return false;
      }
      *key_out = k;
      *offset_out = cur->values[i - 1];
      return true;
    }
    cur = cur->prev;
    i = cur != nullptr ? cur->nkeys : 0;
  }
  return false;
}

size_t BTreeStore::size() const {
  std::shared_lock<std::shared_mutex> g(mu_);
  return size_;
}

}  // namespace drtmr::store
