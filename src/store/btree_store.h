// Ordered store: a B+-tree mapping keys to record offsets, used for tables
// that need range access (TPC-C ORDER/ORDER_LINE/NEW_ORDER). The paper uses
// the HTM-protected DBX B+-tree (§6.3), shown there to be comparable to
// state-of-the-art concurrent B+-trees; our simulated HTM only covers the
// registered region, so the index structure itself (local heap) is protected
// by a readers-writer latch while *records* stay in registered memory with
// full DrTM+R metadata and go through the normal protocol paths. The ordered
// store is local-only, as in the paper (remote records live in hash tables).
//
// Leaf nodes are chained left-to-right for range scans.
#ifndef DRTMR_SRC_STORE_BTREE_STORE_H_
#define DRTMR_SRC_STORE_BTREE_STORE_H_

#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "src/sim/thread_context.h"
#include "src/util/status.h"

namespace drtmr::store {

class BTreeStore {
 public:
  static constexpr uint64_t kNoRecord = 0;
  static constexpr int kFanout = 32;  // max children per inner node / keys per leaf

  BTreeStore();
  BTreeStore(const BTreeStore&) = delete;
  BTreeStore& operator=(const BTreeStore&) = delete;
  ~BTreeStore();

  // Returns the record offset for `key`, or kNoRecord.
  uint64_t Lookup(sim::ThreadContext* ctx, uint64_t key) const;

  // kExists if the key is already present.
  Status Insert(sim::ThreadContext* ctx, uint64_t key, uint64_t record_offset);

  Status Remove(sim::ThreadContext* ctx, uint64_t key);

  // Visits entries with lo <= key <= hi in ascending order; stops early when
  // `fn` returns false. Returns the number of entries visited.
  size_t Scan(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t key, uint64_t offset)>& fn) const;

  // Smallest entry with key >= lo (and key <= hi); false if none.
  bool FirstGreaterEqual(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi, uint64_t* key_out,
                         uint64_t* offset_out) const;

  // Largest entry with lo <= key <= hi; false if none.
  bool LastLessEqual(sim::ThreadContext* ctx, uint64_t lo, uint64_t hi, uint64_t* key_out,
                     uint64_t* offset_out) const;

  size_t size() const;

 private:
  struct Node;
  struct Inner;
  struct Leaf;

  Leaf* FindLeaf(uint64_t key) const;
  void FreeRec(Node* n);

  mutable std::shared_mutex mu_;
  Node* root_;
  size_t size_ = 0;
};

}  // namespace drtmr::store

#endif  // DRTMR_SRC_STORE_BTREE_STORE_H_
