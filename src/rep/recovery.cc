#include "src/rep/recovery.h"

#include <vector>

#include "src/chk/protocol_analyzer.h"
#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::rep {

using store::LockWord;
using store::RecordLayout;

RecoveryReport RecoveryManager::RecoverAfterFailure(sim::ThreadContext* ctx, uint32_t dead,
                                                    uint32_t host,
                                                    cluster::PartitionMap* pmap) {
  RecoveryReport report;
  cluster::Cluster* cluster = engine_->cluster();
  DRTMR_CHECK(host != dead && !cluster->node(host)->killed());

  // 1) The configuration no longer contains the dead machine (the lease
  //    reconfiguration already ran, or we enforce it here).
  if (coordinator_->view().Contains(dead)) {
    coordinator_->Remove(dead);
  }

  // 2) Drain pending log slots on every survivor. Slots written by the dead
  //    machine before it failed are durable in NVM and must be applied (the
  //    transaction reached its commit point once R.1 completed).
  const uint64_t applied_before = replicator_->entries_applied();
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    if (n == dead || cluster->node(n)->killed()) {
      continue;
    }
    replicator_->DrainNode(ctx, n);
    // The dead writer can leave a torn slot at the tail of its ring (it died
    // mid-write). The drain stopped there; the entry never completed R.1, so
    // its transaction never committed — discard the tail rather than leaving
    // the ring wedged on it.
    report.torn_tail_truncated += replicator_->TruncateTornTail(ctx, n, dead);
  }
  report.log_entries_drained = replicator_->entries_applied() - applied_before;

  // 3) Re-host the dead machine's records on `host` from the freshest backup
  //    copy across survivors, and patch surviving primaries whose write-back
  //    (C.5) the dead writer never completed.
  store::Catalog* catalog = engine_->catalog();
  sim::ThreadContext* host_ctx = cluster->node(host)->tool_context();
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    if (n == dead || cluster->node(n)->killed()) {
      continue;
    }
    // Snapshot, not ForEach: the patch path below spins on record locks, and
    // a lock owner may itself be blocked in BackupStore::Apply (R.1 local
    // append) waiting for the store mutex ForEach would hold.
    for (const auto& [k, image] : replicator_->backup_store(n)->Snapshot()) {
      store::Table* table = catalog->table(k.table);
      if (table == nullptr || table->kind() != store::StoreKind::kHash) {
        continue;
      }
      if (k.primary == dead) {
        // Revive on the host node under the same key. InsertImage keeps the
        // freshest seq if several backups hold copies.
        const Status s = table->hash(host)->InsertImage(host_ctx, k.key, image.data(),
                                                        image.size());
        if (s == Status::kOk) {
          report.records_rehosted++;
        }
        // Restore the replication invariant under the record's new name: the
        // host is now the primary, so its backup ring must hold the image as
        // {table, host, key}. Without this, a record never rewritten after the
        // re-host has backups only under the old primary, and a later failure
        // of the host would strand it (cascaded failover loses data). Apply is
        // freshest-wins, so duplicate copies and races with live writers that
        // replicate a newer image under the host's name are both harmless.
        const uint32_t replicas = replicator_->config().replicas;
        for (uint32_t r = 1; r < replicas; ++r) {
          replicator_->SeedBackup(cluster->BackupOf(host, r), k.table, host, k.key,
                                  image.data(), image.size());
        }
        continue;
      }
      if (cluster->node(k.primary)->killed()) {
        continue;
      }
      // Patch a surviving primary that missed its write-back: the log holds a
      // newer image than the record (writer crashed between R.1 and C.5).
      const uint64_t off = table->hash(k.primary)->Lookup(nullptr, k.key);
      if (off == store::HashStore::kNoRecord) {
        continue;
      }
      sim::MemoryBus* bus = cluster->node(k.primary)->bus();
      const uint64_t cur_seq = bus->ReadU64(ctx, off + RecordLayout::kSeqOff);
      const uint64_t log_seq = RecordLayout::GetSeq(image.data());
      if (log_seq <= cur_seq) {
        continue;
      }
      // Take the record's lock (or steal it from the dead owner) so live
      // transactions keep away while we splice the image in. The lock word
      // names (host, 63) rather than the driver context, so pin the actor.
      const uint64_t rec_lock = LockWord::Make(host, 63);
      chk::ScopedActor actor(host, 63);
      while (true) {
        uint64_t obs = 0;
        if (bus->CasU64(ctx, off + RecordLayout::kLockOff, LockWord::kUnlocked, rec_lock, &obs)) {
          break;
        }
        if (LockWord::OwnerNode(obs) == dead) {
          if (chk::AnalyzerEnabled()) {
            chk::ProtocolAnalyzer::Global().NoteDanglingSteal(bus, off, obs);
          }
          if (bus->CasU64(ctx, off + RecordLayout::kLockOff, obs, rec_lock, &obs)) {
            break;
          }
        }
        std::this_thread::yield();
      }
      // Re-validate under the lock: a live transaction may have committed a
      // newer version between the unlocked seq probe and the CAS — splicing
      // the log image over it would be a lost update.
      if (RecordLayout::GetSeq(image.data()) > bus->ReadU64(ctx, off + RecordLayout::kSeqOff)) {
        bus->Write(ctx, off + RecordLayout::kSeqOff, image.data() + RecordLayout::kSeqOff,
                   image.size() - RecordLayout::kSeqOff);
        report.primaries_patched++;
      }
      uint64_t obs = 0;
      bus->CasU64(ctx, off + RecordLayout::kLockOff, rec_lock, LockWord::kUnlocked, &obs);
    }
  }

  // 4) Route the dead machine's partitions to the host, stamped with the
  //    configuration epoch that removed the dead machine. A concurrent
  //    migration cutover with a newer epoch wins the monotone CAS.
  if (pmap != nullptr) {
    const uint64_t epoch = coordinator_->epoch();
    for (uint32_t p = 0; p < pmap->num_partitions(); ++p) {
      if (pmap->node_of(p) == dead) {
        pmap->Rehost(p, host, epoch);
      }
    }
  }
  return report;
}

}  // namespace drtmr::rep
