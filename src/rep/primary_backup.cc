#include "src/rep/primary_backup.h"

#include <cstring>
#include <thread>

#include "src/obs/metrics.h"
#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::rep {

PrimaryBackupReplicator::PrimaryBackupReplicator(cluster::Cluster* cluster,
                                                 const RepConfig& config)
    : cluster_(cluster), config_(config), num_nodes_(cluster->num_nodes()) {
  DRTMR_CHECK(config_.replicas >= 1 && config_.replicas <= num_nodes_);
  stores_.reserve(num_nodes_);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    stores_.push_back(std::make_unique<BackupStore>());
  }
  writers_.reserve(num_nodes_ * num_nodes_);
  for (uint32_t i = 0; i < num_nodes_ * num_nodes_; ++i) {
    writers_.push_back(std::make_unique<WriterState>());
  }
  consumed_ = std::vector<std::atomic<uint64_t>>(num_nodes_ * num_nodes_);
  pump_mu_ = std::unique_ptr<Spinlock[]>(new Spinlock[num_nodes_ * num_nodes_]);
  const RingGeometry g = Ring(0);
  DRTMR_CHECK(g.nslots >= 16) << "log area too small: " << g.nslots << " slots per ring";
}

RingGeometry PrimaryBackupReplicator::Ring(uint32_t writer) const {
  const cluster::Node* n0 = const_cast<cluster::Cluster*>(cluster_)->node(0);
  return RingGeometry::For(n0->log_begin(), n0->log_size(), num_nodes_, writer,
                           config_.max_record_bytes);
}

Status PrimaryBackupReplicator::ReplicateUpdate(sim::ThreadContext* ctx, uint64_t txn_id,
                                                uint32_t primary, uint32_t table_id, uint64_t key,
                                                uint64_t record_offset, const std::byte* image,
                                                size_t image_len, uint64_t* completion_ns) {
  DRTMR_CHECK(image_len + sizeof(LogSlotHeader) <=
              AlignUpToLine(sizeof(LogSlotHeader) + config_.max_record_bytes))
      << "record too large for the log slot size";
  const uint32_t src = ctx->node_id;
  const RingGeometry ring = Ring(src);
  Status worst = Status::kOk;

  for (uint32_t r = 1; r < config_.replicas; ++r) {
    const uint32_t dst = cluster_->BackupOf(primary, r);
    if (dst == primary) {
      continue;  // tiny clusters: placement wrapped onto the primary
    }
    if (dst == src) {
      // This machine is itself a backup of `primary`: the log write is a
      // local NVM append; apply it directly (durably local).
      stores_[dst]->Apply(table_id, primary, key, image, image_len);
      entries_applied_.fetch_add(1, std::memory_order_relaxed);
      obs::Count(obs::Counter::kRepLogEntries);
      obs::Count(obs::Counter::kRepLogBytes, sizeof(LogSlotHeader) + image_len);
      ctx->Charge(cluster_->cost()->CopyNs(image_len));
      continue;
    }
    WriterState& ws = *writers_[src * num_nodes_ + dst];
    const uint64_t index = ws.next.fetch_add(1, std::memory_order_relaxed);

    // Build the slot first: once an index is reserved the slot MUST be
    // written — a hole would stall the consumer forever and deadlock every
    // writer once the ring fills.
    std::vector<std::byte> slot(sizeof(LogSlotHeader) + image_len);
    LogSlotHeader hdr;
    hdr.stamp = index + 1;
    hdr.txn_id = txn_id;
    hdr.key = key;
    hdr.record_off = record_offset;
    hdr.table_id = table_id;
    hdr.primary = primary;
    hdr.image_len = static_cast<uint32_t>(image_len);
    hdr.check = FoldLogSlotHeader(hdr);
    std::memcpy(slot.data(), &hdr, sizeof(hdr));
    std::memcpy(slot.data() + sizeof(hdr), image, image_len);

    // Flow control: never lap the consumer.
    bool dst_dead = false;
    uint64_t spins = 0;
    while (index - ws.consumed_seen.load(std::memory_order_relaxed) >= ring.nslots - 8) {
      uint64_t consumed = 0;
      const Status s = cluster_->node(src)->nic()->Read(ctx, dst, ring.header_offset(), &consumed,
                                                        sizeof(consumed));
      if (s != Status::kOk) {
        dst_dead = true;
        break;
      }
      // The consumer cannot pass this writer's own reserved-but-unwritten
      // slot, so any read above `index` is provably garbage (e.g. a torn read
      // of a header that violates the line-atomicity contract). Latching it
      // into the monotonic consumed_seen would over-admit a whole lap and
      // jam the ring; clamp instead of trusting it.
      if (consumed > index) {
        consumed = index;
      }
      uint64_t seen = ws.consumed_seen.load(std::memory_order_relaxed);
      while (consumed > seen &&
             !ws.consumed_seen.compare_exchange_weak(seen, consumed, std::memory_order_relaxed)) {
      }
      if (index - ws.consumed_seen.load(std::memory_order_relaxed) < ring.nslots - 8) {
        break;
      }
      // The paper dedicates auxiliary cores to log truncation (§7.1); on an
      // oversubscribed host the consumer may be starved in real time, so the
      // stalled writer pumps the destination ring itself (single-consumer is
      // enforced by the ring's pump lock).
      PumpRing(ctx, dst, src, /*budget=*/256, /*wait=*/false);
      if (++spins == 1000000) {
        DRTMR_LOG(Warning) << "slow log consumer: src=" << src << " dst=" << dst
                           << " index=" << index << " consumed=" << ws.consumed_seen.load();
      }
      std::this_thread::yield();
    }

    // Push the slot in one RDMA WRITE (durable on ack, §5.2). If the verb
    // fails — dead backup, or any unexpected reason — fall back to a direct
    // coherent-memory write so the ring stays continuous (the simulated NVM
    // exists in-process even for an unreachable machine; a dead machine's
    // consumer never runs, so the content is only read by recovery).
    const Status s = dst_dead
                         ? Status::kUnavailable
                         : cluster_->node(src)->nic()->WritePosted(ctx, dst,
                                                                   ring.slot_offset(index),
                                                                   slot.data(), slot.size(),
                                                                   completion_ns);
    if (s != Status::kOk) {
      if (s != Status::kUnavailable) {
        // Unavailable is the normal dead-backup case; anything else is a bug.
        DRTMR_LOG(Error) << "log write failed (src=" << src << " dst=" << dst
                         << " index=" << index << " status=" << StatusString(s)
                         << "); writing slot through the bus to keep the ring continuous";
      }
      cluster_->node(dst)->bus()->Write(nullptr, ring.slot_offset(index), slot.data(),
                                        slot.size());
      worst = s;
      continue;
    }
    log_writes_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kRepLogEntries);
    obs::Count(obs::Counter::kRepLogBytes, slot.size());
  }
  return worst;
}

void PrimaryBackupReplicator::FenceReplication(sim::ThreadContext* ctx, uint64_t completion_ns) {
  cluster_->node(ctx->node_id)->nic()->Fence(ctx, completion_ns, cluster_->cost()->rdma_write_ns);
}

void PrimaryBackupReplicator::EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) {
  // Truncation is continuous (consumption); the explicit end marker of the
  // paper maps to the consumed-counter advancing past the txn's slots.
}

void PrimaryBackupReplicator::PumpRing(sim::ThreadContext* ctx, uint32_t node, uint32_t writer,
                                       uint64_t budget, bool wait) {
  Spinlock& mu = pump_mu_[node * num_nodes_ + writer];
  if (wait) {
    mu.lock();
  } else if (!mu.try_lock()) {
    return;  // another consumer (service thread or recovery) is on this ring
  }
  const RingGeometry ring = Ring(writer);
  sim::MemoryBus* bus = cluster_->node(node)->bus();
  std::atomic<uint64_t>& consumed = consumed_[node * num_nodes_ + writer];
  std::vector<std::byte> slot(ring.slot_bytes);
  bool progressed = false;
  for (uint64_t i = 0; i < budget; ++i) {
    const uint64_t index = consumed.load(std::memory_order_relaxed);
    LogSlotHeader hdr;
    bus->Read(ctx, ring.slot_offset(index), &hdr, sizeof(hdr));
    if (hdr.stamp != index + 1 || !LogSlotHeaderIntact(hdr)) {
      break;  // slot not (fully) written yet — stamp lands before the rest
    }
    DRTMR_CHECK(hdr.image_len <= ring.slot_bytes - sizeof(LogSlotHeader));
    bus->Read(ctx, ring.slot_offset(index) + sizeof(LogSlotHeader), slot.data(), hdr.image_len);
    if (!store::RecordLayout::ImageConsistent(slot.data(), hdr.image_len)) {
      // Torn slot: the writer died mid-write and the payload lines disagree
      // with the header's seqnum. The transaction behind it never reached its
      // commit point, so the entry must not be applied — and the entries
      // behind it must not be skipped past it either (log order is the
      // roll-forward order). Stop here; recovery truncates at the tear.
      torn_slots_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    stores_[node]->Apply(hdr.table_id, hdr.primary, hdr.key, slot.data(), hdr.image_len);
    entries_applied_.fetch_add(1, std::memory_order_relaxed);
    consumed.store(index + 1, std::memory_order_relaxed);
    progressed = true;
  }
  if (progressed) {
    // Publish truncation progress for writer flow control.
    bus->WriteU64(ctx, ring.header_offset(), consumed.load(std::memory_order_relaxed));
  }
  mu.unlock();
}

void PrimaryBackupReplicator::Pump(sim::ThreadContext* ctx) {
  const uint32_t node = ctx->node_id;
  for (uint32_t w = 0; w < num_nodes_; ++w) {
    if (w == node) {
      continue;
    }
    PumpRing(ctx, node, w, /*budget=*/64, /*wait=*/false);
  }
}

void PrimaryBackupReplicator::DrainNode(sim::ThreadContext* ctx, uint32_t node) {
  // Bounded at two ring laps, not "until empty": consumption is FIFO, so the
  // first nslots consumed slots necessarily include everything present when
  // the drain started — an unbounded loop could chase live writers that keep
  // appending at the consumption rate and never terminate.
  const uint64_t budget = 2 * Ring(0).nslots;
  for (uint32_t w = 0; w < num_nodes_; ++w) {
    if (w == node) {
      continue;
    }
    PumpRing(ctx, node, w, budget, /*wait=*/true);
  }
}

uint64_t PrimaryBackupReplicator::TruncateTornTail(sim::ThreadContext* ctx, uint32_t node,
                                                   uint32_t writer) {
  Spinlock& mu = pump_mu_[node * num_nodes_ + writer];
  mu.lock();
  const RingGeometry ring = Ring(writer);
  sim::MemoryBus* bus = cluster_->node(node)->bus();
  std::atomic<uint64_t>& consumed = consumed_[node * num_nodes_ + writer];
  std::vector<std::byte> slot(ring.slot_bytes);
  uint64_t dropped = 0;
  while (true) {
    const uint64_t index = consumed.load(std::memory_order_relaxed);
    LogSlotHeader hdr;
    bus->Read(ctx, ring.slot_offset(index), &hdr, sizeof(hdr));
    if (hdr.stamp != index + 1 ||
        hdr.image_len > ring.slot_bytes - sizeof(LogSlotHeader)) {
      break;  // empty tail (or garbage header): nothing more to discard
    }
    if (!LogSlotHeaderIntact(hdr)) {
      // The writer died mid-header: stamp landed, the rest did not. Same
      // torn-tail case as a torn image, detected one step earlier.
      consumed.store(index + 1, std::memory_order_relaxed);
      ++dropped;
      continue;
    }
    bus->Read(ctx, ring.slot_offset(index) + sizeof(LogSlotHeader), slot.data(), hdr.image_len);
    if (store::RecordLayout::ImageConsistent(slot.data(), hdr.image_len)) {
      break;  // a complete entry: leave it for the normal pump
    }
    consumed.store(index + 1, std::memory_order_relaxed);
    ++dropped;
  }
  if (dropped > 0) {
    bus->WriteU64(ctx, ring.header_offset(), consumed.load(std::memory_order_relaxed));
  }
  mu.unlock();
  return dropped;
}

void PrimaryBackupReplicator::SeedBackup(uint32_t backup_node, uint32_t table_id, uint32_t primary,
                                         uint64_t key, const std::byte* image, size_t image_len) {
  stores_[backup_node]->Apply(table_id, primary, key, image, image_len);
}

}  // namespace drtmr::rep
