#include "src/rep/primary_backup.h"

#include <cstring>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"
#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::rep {

PrimaryBackupReplicator::PrimaryBackupReplicator(cluster::Cluster* cluster,
                                                 const RepConfig& config)
    : cluster_(cluster), config_(config), num_nodes_(cluster->num_nodes()) {
  DRTMR_CHECK(config_.replicas >= 1 && config_.replicas <= num_nodes_);
  DRTMR_CHECK(config_.group_commit_window >= 1);
  lanes_per_node_ = cluster_->node(0)->num_slots();
  num_lanes_ = num_nodes_ * lanes_per_node_;
  stores_.reserve(num_nodes_);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    stores_.push_back(std::make_unique<BackupStore>());
  }
  lanes_.reserve(num_lanes_);
  for (uint32_t i = 0; i < num_lanes_; ++i) {
    auto lane = std::make_unique<LaneState>();
    lane->dst.resize(num_nodes_);
    lanes_.push_back(std::move(lane));
  }
  consumed_ = std::vector<std::atomic<uint64_t>>(num_nodes_ * num_lanes_);
  pump_mu_ = std::unique_ptr<Spinlock[]>(new Spinlock[num_nodes_ * num_lanes_]);
  const RingGeometry g = Ring(0);
  DRTMR_CHECK(g.nslots >= 16) << "log area too small: " << g.nslots << " slots per ring";
}

RingGeometry PrimaryBackupReplicator::Ring(uint32_t lane) const {
  const cluster::Node* n0 = const_cast<cluster::Cluster*>(cluster_)->node(0);
  return RingGeometry::For(n0->log_begin(), n0->log_size(), num_lanes_, lane,
                           config_.max_record_bytes);
}

Status PrimaryBackupReplicator::PushSlot(sim::ThreadContext* ctx, LaneState& lane, uint32_t dst,
                                         uint64_t index, const void* slot, size_t slot_len) {
  const RingGeometry ring = Ring(LaneOf(ctx));
  DstState& ds = lane.dst[dst];
  const Status s = cluster_->node(ctx->node_id)
                       ->nic()
                       ->ChainAppend(ctx, &ds.chain, dst, ring.slot_offset(index), slot, slot_len);
  if (s != Status::kOk) {
    // Dead backup (kUnavailable) or fenced issuer (kStaleEpoch): the verb did
    // not land, but once an index is reserved the slot MUST be written — a
    // hole would stall the consumer forever and deadlock the lane once the
    // ring fills. Write it through the bus (the simulated NVM exists
    // in-process even for an unreachable machine; a dead machine's consumer
    // never runs, so the content is only read by recovery).
    if (s != Status::kUnavailable && s != Status::kStaleEpoch) {
      DRTMR_LOG(Error) << "log chain append failed (src=" << ctx->node_id << " dst=" << dst
                       << " index=" << index << " status=" << StatusString(s)
                       << "); writing slot through the bus to keep the ring continuous";
    }
    // drtmr-lint: allow(registered-memory): ring-continuity write when the verb path is refused (see above)
    cluster_->node(dst)->bus()->Write(nullptr, ring.slot_offset(index), slot, slot_len);
    return s;
  }
  log_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::kOk;
}

void PrimaryBackupReplicator::PublishWatermark(sim::ThreadContext* ctx, LaneState& lane,
                                               uint32_t dst) {
  const RingGeometry ring = Ring(LaneOf(ctx));
  DstState& ds = lane.dst[dst];
  const uint64_t wm = ds.watermark;
  const Status s =
      cluster_->node(ctx->node_id)
          ->nic()
          ->ChainAppend(ctx, &ds.chain, dst, ring.watermark_offset(), &wm, sizeof(wm));
  if (s != Status::kOk) {
    // Same continuity argument as PushSlot: the decided frontier must reach
    // the ring even when the verb path is refused, or recovery would roll
    // back transactions this lane already reported committed.
    // drtmr-lint: allow(registered-memory): decided frontier must land even on a refused verb
    cluster_->node(dst)->bus()->WriteU64(nullptr, ring.watermark_offset(), wm);
  }
}

Status PrimaryBackupReplicator::StageSlotTo(sim::ThreadContext* ctx, LaneState& lane,
                                            uint32_t dst, uint64_t txn_id, uint32_t primary,
                                            uint32_t table_id, uint64_t key,
                                            uint64_t record_offset, const std::byte* image,
                                            size_t image_len, uint64_t* index_out) {
  const uint32_t src = ctx->node_id;
  const RingGeometry ring = Ring(LaneOf(ctx));
  DstState& ds = lane.dst[dst];
  const uint64_t index = ds.next++;
  *index_out = index;
  // The consumer cannot pass this lane's watermark, and the watermark only
  // moves at the decision — so a single transaction staging more slots to
  // one backup than the ring can hold would deadlock against itself.
  DRTMR_CHECK(index - ds.watermark < ring.nslots - 8)
      << "transaction write set exceeds the log ring (" << ring.nslots
      << " slots): shrink the write set or grow log_bytes";

  // Build the slot first: once an index is reserved the slot MUST be
  // written. flags carries kSlotCommitted optimistically — the slot stays
  // invisible to the pump until the watermark passes it, and an abort
  // rewrites the header as a tombstone before the watermark moves.
  std::vector<std::byte> slot(sizeof(LogSlotHeader) + image_len);
  LogSlotHeader hdr;
  hdr.stamp = index + 1;
  hdr.txn_id = txn_id;
  hdr.key = key;
  hdr.record_off = record_offset;
  hdr.table_id = table_id;
  hdr.primary = primary;
  hdr.image_len = static_cast<uint32_t>(image_len);
  hdr.flags = kSlotCommitted;
  hdr.pad = 0;
  hdr.check = FoldLogSlotHeader(hdr);
  std::memcpy(slot.data(), &hdr, sizeof(hdr));
  std::memcpy(slot.data() + sizeof(hdr), image, image_len);

  // Flow control: never lap the consumer.
  uint64_t spins = 0;
  while (index - ds.consumed_seen >= ring.nslots - 8) {
    uint64_t consumed = 0;
    const Status s = cluster_->node(src)->nic()->Read(ctx, dst, ring.header_offset(), &consumed,
                                                      sizeof(consumed));
    if (s != Status::kOk) {
      break;  // dead backup: its consumer never runs; fall through to PushSlot
    }
    // The consumer cannot pass this writer's own reserved-but-unwritten
    // slot, so any read above `index` is provably garbage (e.g. a torn read
    // of a header that violates the line-atomicity contract). Latching it
    // into the monotonic consumed_seen would over-admit a whole lap and
    // jam the ring; clamp instead of trusting it.
    if (consumed > index) {
      consumed = index;
    }
    if (consumed > ds.consumed_seen) {
      ds.consumed_seen = consumed;
    }
    if (index - ds.consumed_seen < ring.nslots - 8) {
      break;
    }
    // The paper dedicates auxiliary cores to log truncation (§7.1); on an
    // oversubscribed host the consumer may be starved in real time, so the
    // stalled writer pumps its own ring on the destination (single-consumer
    // is enforced by the ring's pump lock).
    PumpRing(ctx, dst, LaneOf(ctx), /*budget=*/256, /*wait=*/false);
    if (++spins == 1000000) {
      DRTMR_LOG(Warning) << "slow log consumer: lane=" << LaneOf(ctx) << " dst=" << dst
                         << " index=" << index << " consumed=" << ds.consumed_seen;
    }
    std::this_thread::yield();
  }

  const Status s = PushSlot(ctx, lane, dst, index, slot.data(), slot.size());
  if (s == Status::kOk) {
    obs::Count(obs::Counter::kRepLogEntries);
    obs::Count(obs::Counter::kRepLogBytes, slot.size());
  }
  return s;
}

Status PrimaryBackupReplicator::StageUpdate(sim::ThreadContext* ctx, uint64_t txn_id,
                                            uint32_t primary, uint32_t table_id, uint64_t key,
                                            uint64_t record_offset, const std::byte* image,
                                            size_t image_len) {
  DRTMR_CHECK(image_len + sizeof(LogSlotHeader) <=
              AlignUpToLine(sizeof(LogSlotHeader) + config_.max_record_bytes))
      << "record too large for the log slot size";
  const uint32_t src = ctx->node_id;
  LaneState& lane = Lane(ctx);
  Status worst = Status::kOk;

  for (uint32_t r = 1; r < config_.replicas; ++r) {
    const uint32_t dst = cluster_->BackupOf(primary, r);
    if (dst == primary) {
      continue;  // tiny clusters: placement wrapped onto the primary
    }
    StagedSlot staged;
    staged.dst = dst;
    staged.index = 0;
    staged.txn_id = txn_id;
    staged.key = key;
    staged.record_off = record_offset;
    staged.table_id = table_id;
    staged.primary = primary;
    staged.image_len = static_cast<uint32_t>(image_len);
    if (dst == src) {
      // This machine is itself a backup of `primary`: the log write is a
      // local NVM append. The apply is deferred to the commit decision — the
      // slot is speculative, and a backup copy must never hold an undecided
      // image.
      staged.local_image.assign(image, image + image_len);
      ctx->Charge(cluster_->cost()->CopyNs(image_len));
    } else {
      const Status s = StageSlotTo(ctx, lane, dst, txn_id, primary, table_id, key, record_offset,
                                   image, image_len, &staged.index);
      if (s != Status::kOk) {
        worst = s;
      }
    }
    lane.staged.push_back(std::move(staged));
  }
  if (config_.test.watermark_at_stage) {
    // Teeth override: expose the speculative slots immediately (the decision
    // has not happened). The pump will replay them even if the transaction
    // aborts — exactly the bug the battery's checkers must catch.
    for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
      DstState& ds = lane.dst[dst];
      if (ds.watermark != ds.next) {
        ds.watermark = ds.next;
        PublishWatermark(ctx, lane, dst);
      }
    }
  }
  return worst;
}

void PrimaryBackupReplicator::TombstoneSlot(sim::ThreadContext* ctx, LaneState& lane,
                                            const StagedSlot& s) {
  // Header-only rewrite: the image bytes stay in place (they are never read
  // through a tombstone), so retiring a slot costs one 56-byte chained WQE.
  LogSlotHeader hdr;
  hdr.stamp = s.index + 1;
  hdr.txn_id = s.txn_id;
  hdr.key = s.key;
  hdr.record_off = s.record_off;
  hdr.table_id = s.table_id;
  hdr.primary = s.primary;
  hdr.image_len = s.image_len;
  hdr.flags = kSlotTombstone;
  hdr.pad = 0;
  hdr.check = FoldLogSlotHeader(hdr);
  (void)PushSlot(ctx, lane, s.dst, s.index, &hdr, sizeof(hdr));
}

Status PrimaryBackupReplicator::SupersedeUpdate(sim::ThreadContext* ctx, uint64_t txn_id,
                                                uint32_t primary, uint32_t table_id, uint64_t key,
                                                uint64_t record_offset, const std::byte* image,
                                                size_t image_len) {
  LaneState& lane = Lane(ctx);
  Status worst = Status::kOk;
  bool found = false;
  for (StagedSlot& s : lane.staged) {
    if (s.primary != primary || s.table_id != table_id || s.key != key) {
      continue;
    }
    found = true;
    obs::Count(obs::Counter::kRepSlotsSuperseded);
    if (s.dst == ctx->node_id) {
      // Deferred local apply: just swap the buffered image.
      s.image_len = static_cast<uint32_t>(image_len);
      s.local_image.assign(image, image + image_len);
      ctx->Charge(cluster_->cost()->CopyNs(image_len));
      continue;
    }
    // Remote slot: retire the mispredicted one and restage a corrected copy
    // to the same replica, updating the staged record in place so a later
    // abort tombstones the new index, not the already-retired one.
    TombstoneSlot(ctx, lane, s);
    s.image_len = static_cast<uint32_t>(image_len);
    const Status ps = StageSlotTo(ctx, lane, s.dst, txn_id, primary, table_id, key, record_offset,
                                  image, image_len, &s.index);
    if (ps != Status::kOk) {
      worst = ps;
    }
  }
  if (!found) {
    // Never staged (e.g. the early pass skipped it): stage late.
    return StageUpdate(ctx, txn_id, primary, table_id, key, record_offset, image, image_len);
  }
  return worst;
}

Status PrimaryBackupReplicator::CommitTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) {
  LaneState& lane = Lane(ctx);
  if (lane.staged.empty()) {
    return Status::kOk;  // nothing replicated: no log, no fence debt
  }
  const uint32_t src = ctx->node_id;
  bool touched[/*max nodes*/ 64] = {};
  DRTMR_CHECK(num_nodes_ <= 64);
  for (StagedSlot& s : lane.staged) {
    if (s.dst == src) {
      // Deferred local NVM append becomes durable at the decision.
      stores_[src]->Apply(s.table_id, s.primary, s.key, s.local_image.data(), s.image_len);
      entries_applied_.fetch_add(1, std::memory_order_relaxed);
      obs::Count(obs::Counter::kRepLogEntries);
      obs::Count(obs::Counter::kRepLogBytes, sizeof(LogSlotHeader) + s.image_len);
    } else {
      touched[s.dst] = true;
    }
  }
  for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
    if (!touched[dst]) {
      continue;
    }
    DstState& ds = lane.dst[dst];
    // All slots between the old watermark and `next` were staged by this
    // transaction (earlier transactions' decisions already advanced the
    // watermark to their frontier), so the decision is one 8-byte append.
    ds.watermark = ds.next;
    PublishWatermark(ctx, lane, dst);
  }
  lane.staged.clear();
  CloseDecision(ctx, lane);
  return Status::kOk;
}

void PrimaryBackupReplicator::AbortTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) {
  LaneState& lane = Lane(ctx);
  if (lane.staged.empty()) {
    return;  // most aborts never reached the staging point
  }
  const uint32_t src = ctx->node_id;
  bool touched[64] = {};
  DRTMR_CHECK(num_nodes_ <= 64);
  for (const StagedSlot& s : lane.staged) {
    obs::Count(obs::Counter::kRepSlotsRetired);
    if (s.dst == src) {
      continue;  // buffered local apply: dropping the buffer is the rollback
    }
    TombstoneSlot(ctx, lane, s);
    touched[s.dst] = true;
  }
  for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
    if (!touched[dst]) {
      continue;
    }
    DstState& ds = lane.dst[dst];
    // Advance the watermark past the tombstones: the consumer must be able to
    // consume (and skip) them, or an abort storm would jam the ring.
    ds.watermark = ds.next;
    PublishWatermark(ctx, lane, dst);
  }
  lane.staged.clear();
  CloseDecision(ctx, lane);
}

void PrimaryBackupReplicator::CloseDecision(sim::ThreadContext* ctx, LaneState& lane) {
  if (lane.window_txns == 0) {
    lane.window_open_ns = ctx->clock.now_ns();
  }
  lane.window_txns++;
  if (lane.window_txns >= config_.group_commit_window ||
      ctx->clock.now_ns() - lane.window_open_ns >= config_.group_commit_max_open_ns) {
    FlushWindow(ctx, lane);
  }
}

void PrimaryBackupReplicator::FlushWindow(sim::ThreadContext* ctx, LaneState& lane) {
  sim::RdmaNic* nic = cluster_->node(ctx->node_id)->nic();
  for (uint32_t dst = 0; dst < num_nodes_; ++dst) {
    nic->ChainRing(ctx, &lane.dst[dst].chain, &lane.completion_ns);
  }
  // One durability fence for every decision in the window (R.1's "wait for
  // the NIC ack" amortized across the group).
  nic->Fence(ctx, lane.completion_ns, cluster_->cost()->rdma_write_ns);
  obs::Count(obs::Counter::kRepWindowFlushes);
  obs::Count(obs::Counter::kRepWindowTxns, lane.window_txns);
  lane.window_txns = 0;
  lane.completion_ns = 0;
}

void PrimaryBackupReplicator::FlushLog(sim::ThreadContext* ctx) {
  LaneState& lane = Lane(ctx);
  bool open_chain = false;
  for (const DstState& ds : lane.dst) {
    open_chain |= ds.chain.open();
  }
  if (lane.window_txns > 0 || open_chain) {
    FlushWindow(ctx, lane);
  }
}

void PrimaryBackupReplicator::EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) {
  // Truncation is continuous (consumption); the explicit end marker of the
  // paper maps to the consumed-counter advancing past the txn's slots.
}

void PrimaryBackupReplicator::PumpRing(sim::ThreadContext* ctx, uint32_t node, uint32_t lane,
                                       uint64_t budget, bool wait) {
  Spinlock& mu = pump_mu_[node * num_lanes_ + lane];
  if (wait) {
    mu.lock();
  } else if (!mu.try_lock()) {
    return;  // another consumer (service thread or recovery) is on this ring
  }
  const std::lock_guard<Spinlock> g(mu, std::adopt_lock);
  const RingGeometry ring = Ring(lane);
  sim::MemoryBus* bus = cluster_->node(node)->bus();
  std::atomic<uint64_t>& consumed = consumed_[node * num_lanes_ + lane];
  // The decided frontier: slots at or beyond it are speculative (their
  // transactions have not decided) and must not be applied or consumed.
  const uint64_t decided = bus->ReadU64(ctx, ring.watermark_offset());
  const uint64_t watermark = config_.test.pump_ignores_watermark ? UINT64_MAX : decided;
  std::vector<std::byte> slot(ring.slot_bytes);
  bool progressed = false;
  for (uint64_t i = 0; i < budget; ++i) {
    const uint64_t index = consumed.load(std::memory_order_relaxed);
    if (index >= watermark) {
      break;  // speculative tail: wait for the writer's decision
    }
    LogSlotHeader hdr;
    bus->Read(ctx, ring.slot_offset(index), &hdr, sizeof(hdr));
    if (hdr.stamp != index + 1 || !LogSlotHeaderIntact(hdr)) {
      if (hdr.stamp > index + 1 && index < decided) {
        // Overrun: while this machine was unreachable its consumer could not
        // run, and writers — whose flow-control reads of the consumed counter
        // failed — kept appending through the NVM write-through path and
        // lapped the ring. The decided content that used to sit here is
        // already physically overwritten, so this backup missed that update
        // (its transaction was told kUnavailable); freshest-wins Apply and
        // seq-based recovery reconcile the staleness. Below the watermark a
        // stamp can never be *behind* (slot writes precede the watermark that
        // covers them, failed verbs fall back to the bus), so a stamp from a
        // later lap is provably an overrun — consume the position rather than
        // wedging the lane forever on a stamp that can never match.
        ring_overruns_.fetch_add(1, std::memory_order_relaxed);
        consumed.store(index + 1, std::memory_order_relaxed);
        progressed = true;
        continue;
      }
      break;  // slot not (fully) written yet — stamp lands before the rest
    }
    DRTMR_CHECK(hdr.image_len <= ring.slot_bytes - sizeof(LogSlotHeader));
    if ((hdr.flags & kSlotTombstone) != 0 && !config_.test.pump_applies_tombstones) {
      // Retired slot (aborted or superseded): consume without applying.
      consumed.store(index + 1, std::memory_order_relaxed);
      progressed = true;
      continue;
    }
    bus->Read(ctx, ring.slot_offset(index) + sizeof(LogSlotHeader), slot.data(), hdr.image_len);
    if (!store::RecordLayout::ImageConsistent(slot.data(), hdr.image_len)) {
      // Torn slot: the writer died mid-write and the payload lines disagree
      // with the header's seqnum. The transaction behind it never reached its
      // commit point, so the entry must not be applied — and the entries
      // behind it must not be skipped past it either (log order is the
      // roll-forward order). Stop here; recovery truncates at the tear.
      torn_slots_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    stores_[node]->Apply(hdr.table_id, hdr.primary, hdr.key, slot.data(), hdr.image_len);
    entries_applied_.fetch_add(1, std::memory_order_relaxed);
    consumed.store(index + 1, std::memory_order_relaxed);
    progressed = true;
  }
  if (progressed) {
    // Publish truncation progress for writer flow control.
    bus->WriteU64(ctx, ring.header_offset(), consumed.load(std::memory_order_relaxed));
  }
}

void PrimaryBackupReplicator::Pump(sim::ThreadContext* ctx) {
  const uint32_t node = ctx->node_id;
  for (uint32_t lane = 0; lane < num_lanes_; ++lane) {
    if (lane / lanes_per_node_ == node) {
      continue;  // own lanes never log to this node remotely
    }
    PumpRing(ctx, node, lane, /*budget=*/64, /*wait=*/false);
  }
}

void PrimaryBackupReplicator::DrainNode(sim::ThreadContext* ctx, uint32_t node) {
  // Bounded at two ring laps, not "until empty": consumption is FIFO, so the
  // first nslots consumed slots necessarily include everything present when
  // the drain started — an unbounded loop could chase live writers that keep
  // appending at the consumption rate and never terminate.
  const uint64_t budget = 2 * Ring(0).nslots;
  for (uint32_t lane = 0; lane < num_lanes_; ++lane) {
    if (lane / lanes_per_node_ == node) {
      continue;
    }
    PumpRing(ctx, node, lane, budget, /*wait=*/true);
  }
}

uint64_t PrimaryBackupReplicator::TruncateTornTail(sim::ThreadContext* ctx, uint32_t node,
                                                   uint32_t writer) {
  uint64_t dropped = 0;
  for (uint32_t lane = writer * lanes_per_node_; lane < (writer + 1) * lanes_per_node_; ++lane) {
    Spinlock& mu = pump_mu_[node * num_lanes_ + lane];
    const std::lock_guard<Spinlock> g(mu);
    const RingGeometry ring = Ring(lane);
    sim::MemoryBus* bus = cluster_->node(node)->bus();
    std::atomic<uint64_t>& consumed = consumed_[node * num_lanes_ + lane];
    const uint64_t watermark = bus->ReadU64(ctx, ring.watermark_offset());
    std::vector<std::byte> slot(ring.slot_bytes);
    uint64_t lane_dropped = 0;
    while (true) {
      const uint64_t index = consumed.load(std::memory_order_relaxed);
      LogSlotHeader hdr;
      bus->Read(ctx, ring.slot_offset(index), &hdr, sizeof(hdr));
      if (hdr.stamp != index + 1 ||
          hdr.image_len > ring.slot_bytes - sizeof(LogSlotHeader)) {
        break;  // empty tail (or garbage header): nothing more to discard
      }
      if (index >= watermark) {
        // Speculative slot of a dead lane: its transaction never decided, so
        // discarding is the roll-back the protocol requires (§5.2). The
        // watermark word landed after the slots it covers (FIFO per chain),
        // so everything beyond it is provably undecided.
        consumed.store(index + 1, std::memory_order_relaxed);
        ++lane_dropped;
        continue;
      }
      if (!LogSlotHeaderIntact(hdr)) {
        // The writer died mid-header: stamp landed, the rest did not. Same
        // torn-tail case as a torn image, detected one step earlier.
        consumed.store(index + 1, std::memory_order_relaxed);
        ++lane_dropped;
        continue;
      }
      bus->Read(ctx, ring.slot_offset(index) + sizeof(LogSlotHeader), slot.data(), hdr.image_len);
      if (store::RecordLayout::ImageConsistent(slot.data(), hdr.image_len)) {
        break;  // a complete decided entry: leave it for the normal pump
      }
      consumed.store(index + 1, std::memory_order_relaxed);
      ++lane_dropped;
    }
    if (lane_dropped > 0) {
      bus->WriteU64(ctx, ring.header_offset(), consumed.load(std::memory_order_relaxed));
      dropped += lane_dropped;
    }
  }
  return dropped;
}

void PrimaryBackupReplicator::SeedBackup(uint32_t backup_node, uint32_t table_id, uint32_t primary,
                                         uint64_t key, const std::byte* image, size_t image_len) {
  stores_[backup_node]->Apply(table_id, primary, key, image, image_len);
}

}  // namespace drtmr::rep
