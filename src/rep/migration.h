// Live shard migration (DESIGN.md §14): planned, zero-downtime re-hosting of
// a partition from its current owner to another live node, built on the same
// epoch-fence substrate the failure path uses (DESIGN.md §10).
//
// Protocol per partition:
//
//   1. Bulk copy. The destination pulls every record of the partition from
//      the source with one-sided RDMA READs (per-line version check for
//      consistency, seq-parity check under replication) and installs them
//      via InsertImage (freshest-wins), while the source keeps committing.
//      Passes repeat, each chasing the delta the previous pass missed, until
//      the delta is small.
//   2. Drain. The write-admission block (txn::MigrationBlock) opens: commits
//      that would write the moving partition — on either home, which matters
//      once the map flips — abort with kMigrating (callers retry with
//      jittered backoff); in-flight commits are drained via the
//      Node::EnterCommit counters. Reads keep flowing.
//   3. Final copy. With the source quiesced for writes, one more pass copies
//      the remaining delta; now source and destination agree — the dual-home
//      window, in which a read served by either home returns the newest
//      committed version.
//   4. Re-seed backups. The moved records' backup ring is re-seeded under
//      the destination's name, so a later failure of the destination cannot
//      strand them (mirrors recovery's cascaded-failover rule).
//   5. Cutover. The coordinator commits a new epoch; the partition map entry
//      flips to (destination, new epoch) with one monotone CAS (a racing
//      recovery with a newer epoch wins and the migration rolls back); the
//      new epoch is stamped into every member's registered memory, fencing
//      transactions that began under the old placement; in-flight commits
//      are drained once more; then the write block closes.
//
// Fault tolerance: the source or destination dying mid-flight (reads return
// kUnavailable / killed() observed at pass boundaries) or losing the cutover
// CAS rolls the migration back cleanly — block closed, migrating flag
// cleared, destination-side copies left as harmless freshest-wins debris
// unreachable through the partition map. A frozen coordinator driver merely
// stalls the epoch bump; the moving shard degrades to read-only (bounded
// kMigrating retries) rather than stalling the cluster, because the manager
// stamps epochs itself and never waits on the membership driver thread.
#ifndef DRTMR_SRC_REP_MIGRATION_H_
#define DRTMR_SRC_REP_MIGRATION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {

struct MigrationSpec {
  // Tables whose records move with a partition (hash tables only).
  std::vector<store::Table*> tables;
  // Maps a key to its partition (the workload's sharding function).
  std::function<uint32_t(uint64_t key)> partition_of;

  // Transport-retry budget per copy READ (RdmaNic::ReadTimeout).
  uint64_t copy_read_timeout_ns = 20'000;
  // Consistency retries per record before a pass skips it (the next pass
  // re-covers it; the final pass fails the migration instead of skipping).
  uint32_t copy_retry_limit = 32;
  // Bulk passes before cutting over regardless of delta size.
  uint32_t max_bulk_passes = 8;
  // Delta (records refreshed in a pass) below which the pump cuts over.
  uint64_t cutover_delta = 64;
  uint64_t seed = 1;
};

// Test instrumentation. on_dual_home fires inside the dual-home window:
// final copy done, backups re-seeded, cutover flip not yet published.
struct MigrationHooks {
  std::function<void()> on_dual_home;
};

struct MigrationReport {
  Status status = Status::kOk;  // kOk = cutover committed
  bool rolled_back = false;     // failure path completed cleanly
  uint32_t partition = 0;
  uint32_t source = 0;
  uint32_t destination = 0;
  uint64_t epoch = 0;  // epoch the cutover committed (0 if rolled back)
  uint64_t bulk_passes = 0;
  uint64_t records_copied = 0;  // records actually refreshed on the destination
  uint64_t backups_seeded = 0;
  uint64_t duration_ns = 0;  // virtual time on the migration context
};

class MigrationManager {
 public:
  // `replicator` may be null (no replication: step 4 is skipped).
  // Registers its write-admission block with `engine`.
  MigrationManager(txn::TxnEngine* engine, PrimaryBackupReplicator* replicator,
                   cluster::Coordinator* coordinator, cluster::PartitionMap* pmap,
                   MigrationSpec spec);

  void set_hooks(MigrationHooks hooks) { hooks_ = std::move(hooks); }

  // Moves `partition` to `dst` (must be live and distinct from the current
  // owner). Blocking; run from a control thread, not a worker. Returns kOk
  // on committed cutover; any other status means the migration rolled back
  // (or was refused) and the old placement still stands.
  MigrationReport MigratePartition(uint32_t partition, uint32_t dst);

  // Reconfiguration planner: the (partition, destination) moves that
  // rebalance ownership round-robin across nodes [0, active_nodes). Emits
  // only partitions whose current owner differs from the target. Scale-out
  // passes a larger active set than the current placement uses; scale-in a
  // smaller one.
  static std::vector<std::pair<uint32_t, uint32_t>> PlanRebalance(
      const cluster::PartitionMap& pmap, uint32_t active_nodes);

  txn::MigrationBlock* block() { return &block_; }

  uint64_t migrations_started() const { return started_; }
  uint64_t migrations_committed() const { return committed_; }
  uint64_t migrations_rolled_back() const { return rolled_back_; }

 private:
  // One bulk/delta/final copy pass over every spec table. `*refreshed`
  // counts records whose destination copy this pass updated. On the final
  // pass a record that never yields a clean image fails the pass (kConflict)
  // unless the destination already holds a copy at least as fresh.
  Status CopyPass(uint32_t partition, uint32_t src, uint32_t dst, bool final_pass,
                  uint64_t* refreshed);

  // Re-seeds the backup ring of every moved record under the destination's
  // name (primary = dst). No-op without replication.
  uint64_t ReseedBackups(uint32_t partition, uint32_t dst);

  // Monotone raise of every current member's epoch word to `epoch` (direct
  // bus CAS, same mechanism as the membership driver). No-op when fabric
  // fencing is off.
  void StampMembers(uint64_t epoch);

  // Spins until no node has an in-flight commit. Returns false (and gives
  // up) if the drain does not converge within a generous real-time budget —
  // the rollback path for a wedged cluster.
  bool DrainInflightCommits();

  // Paces the pump against the workers' virtual-clock frontier: yields real
  // time while `ctx`'s clock leads the frontier by more than the pacing
  // budget. Keeping the lead well under the SimResource booking horizon is
  // what makes the migration background load — a pump that raced ahead would
  // fold the shared NIC timelines forward and drag every worker's clock onto
  // its own. Returns immediately when no worker clock is advancing (idle or
  // wedged cluster), so the control thread can never hang here.
  void PaceToWorkers(sim::ThreadContext* ctx);
  uint64_t WorkerFrontierNs();

  // Rolls the drain window back: block closed, migrating flag cleared.
  void Rollback(uint32_t partition, MigrationReport* report, Status why);

  sim::ThreadContext* ctx_of(uint32_t node);

  txn::TxnEngine* engine_;
  PrimaryBackupReplicator* replicator_;
  cluster::Coordinator* coordinator_;
  cluster::PartitionMap* pmap_;
  MigrationSpec spec_;
  MigrationHooks hooks_;
  txn::MigrationBlock block_;

  // Private per-node control-plane contexts (worker slot num_slots()+2 by
  // convention: membership uses num_slots() and num_slots()+1). Not gate
  // registered: migration runs in real time like recovery, fast-forwarding
  // its clocks to the workers' frontier at each migration start.
  std::vector<std::unique_ptr<sim::ThreadContext>> ctx_;

  uint64_t started_ = 0;
  uint64_t committed_ = 0;
  uint64_t rolled_back_ = 0;

  // Pacing state: the highest worker frontier seen and the real time it last
  // moved. A frontier static for longer than the staleness budget means no
  // workers are running — pacing bails instead of waiting on a dead clock.
  uint64_t pace_frontier_ns_ = 0;
  std::chrono::steady_clock::time_point pace_moved_at_{};
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_MIGRATION_H_
