// NVM log rings (§5.1, after FaRM). Each node's registered region reserves a
// log area at the top, divided into one ring per writer machine. A primary
// committing a transaction RDMA-WRITEs one fixed-size slot per written record
// into the rings of that record's backups; the write is durable when the NIC
// acks (battery-backed DRAM). The backup's auxiliary thread consumes slots in
// order, applies them to its backup copies, and advances a consumed counter
// in the ring header (truncation). Writers use the counter for flow control.
//
// Ring layout:  [ header line: consumed_count(8B) | pad ] [ slot 0 ] [ slot 1 ] ...
// Slot layout:  LogSlotHeader | record image (image_len bytes), padded to the
//               fixed slot size. stamp == write_index + 1 marks a complete
//               slot (slots are zero before first use).
#ifndef DRTMR_SRC_REP_LOG_H_
#define DRTMR_SRC_REP_LOG_H_

#include <cstdint>

#include "src/util/cacheline.h"

namespace drtmr::rep {

struct LogSlotHeader {
  uint64_t stamp;       // write index + 1; 0 = empty
  uint64_t txn_id;
  uint64_t key;
  uint64_t record_off;  // offset of the record on its primary
  uint32_t table_id;
  uint32_t primary;     // node id whose record this is
  uint32_t image_len;
  uint32_t flags;
};
static_assert(sizeof(LogSlotHeader) == 48);

struct RingGeometry {
  uint64_t base;        // offset of the ring within the node's region
  uint64_t slot_bytes;  // fixed, line-aligned
  uint64_t nslots;

  uint64_t header_offset() const { return base; }
  uint64_t slot_offset(uint64_t index) const {
    return base + kCacheLineSize + (index % nslots) * slot_bytes;
  }

  // Ring for writer `writer` within a log area [log_begin, log_begin+log_size)
  // shared by `num_writers` writers.
  static RingGeometry For(uint64_t log_begin, uint64_t log_size, uint32_t num_writers,
                          uint32_t writer, uint64_t max_image_bytes) {
    RingGeometry g;
    const uint64_t per_writer = log_size / num_writers;
    g.base = log_begin + writer * per_writer;
    g.slot_bytes = AlignUpToLine(sizeof(LogSlotHeader) + max_image_bytes);
    g.nslots = (per_writer - kCacheLineSize) / g.slot_bytes;
    return g;
  }
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_LOG_H_
