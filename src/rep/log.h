// NVM log rings (§5.1, after FaRM). Each node's registered region reserves a
// log area at the top, divided into one ring per writer *lane* (one lane per
// context slot on each machine, so every ring has exactly one writer thread).
// A primary committing a transaction RDMA-WRITEs one fixed-size slot per
// written record into the rings of that record's backups; the write is
// durable when the NIC acks (battery-backed DRAM). The backup's auxiliary
// thread consumes slots in order, applies them to its backup copies, and
// advances a consumed counter in the ring header (truncation). Writers use
// the counter for flow control.
//
// Ring layout:
//   [ line 0: consumed_count(8B) | pad ]   — written by the CONSUMER only
//   [ line 1: watermark(8B)      | pad ]   — written by the WRITER only
//   [ slot 0 ] [ slot 1 ] ...
// The two header words live on separate cache lines on purpose: RDMA (and the
// simulated bus) is atomic per line, and mixing two writers' words on one
// line re-creates the torn-publication jam documented at RingGeometry::For.
//
// The watermark is the writer's commit-sequence frontier: slots with
// index < watermark belong to *decided* transactions (committed slots carry
// kSlotCommitted; aborted ones are tombstoned) and may be applied by the
// pump. Slots at index >= watermark are speculative — staged early, possibly
// belonging to a transaction that will abort — and must never be applied or
// replayed by recovery.
//
// Slot layout:  LogSlotHeader | record image (image_len bytes), padded to the
//               fixed slot size. stamp == write_index + 1 marks a complete
//               slot (slots are zero before first use).
#ifndef DRTMR_SRC_REP_LOG_H_
#define DRTMR_SRC_REP_LOG_H_

#include <cstdint>

#include "src/util/cacheline.h"

namespace drtmr::rep {

// Slot lifecycle flags (DESIGN.md §13).
inline constexpr uint32_t kSlotCommitted = 1u << 0;  // decided: apply the image
inline constexpr uint32_t kSlotTombstone = 1u << 1;  // decided: skip (aborted/superseded)

struct LogSlotHeader {
  uint64_t stamp;       // write index + 1; 0 = empty
  uint64_t txn_id;
  uint64_t key;
  uint64_t record_off;  // offset of the record on its primary
  uint32_t table_id;
  uint32_t primary;     // node id whose record this is
  uint32_t image_len;
  uint32_t flags;       // kSlot* lifecycle bits; 0 while speculative
  uint32_t check;       // Fold() of the other fields: torn-header detector
  uint32_t pad;
};
static_assert(sizeof(LogSlotHeader) == 56);

// Header self-check. The slot (header + image) lands in one RDMA WRITE whose
// simulated memcpy is not atomic, so a consumer polling the ring can observe
// stamp == index+1 while the rest of the header is still the previous lap's
// (or zero). The per-line seq tags (RecordLayout::ImageConsistent) only cover
// the image, and only with a trustworthy image_len — so the header carries
// its own fold. A mismatch means "slot not fully written yet": back off, the
// write completes in finite time (or recovery truncates the tear).
inline uint32_t FoldLogSlotHeader(const LogSlotHeader& h) {
  uint64_t z = h.stamp;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull + h.txn_id;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull + h.key;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull + h.record_off;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull +
      ((static_cast<uint64_t>(h.table_id) << 32) | h.primary);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull +
      ((static_cast<uint64_t>(h.image_len) << 32) | h.flags);
  z ^= z >> 32;
  const uint32_t fold = static_cast<uint32_t>(z);
  return fold != 0 ? fold : 1;  // 0 stays "never written"
}

inline bool LogSlotHeaderIntact(const LogSlotHeader& h) {
  return h.check == FoldLogSlotHeader(h);
}

struct RingGeometry {
  uint64_t base;        // offset of the ring within the node's region
  uint64_t slot_bytes;  // fixed, line-aligned
  uint64_t nslots;

  uint64_t header_offset() const { return base; }          // consumed counter
  uint64_t watermark_offset() const { return base + kCacheLineSize; }
  uint64_t slot_offset(uint64_t index) const {
    return base + 2 * kCacheLineSize + (index % nslots) * slot_bytes;
  }

  // Ring for writer lane `writer` within a log area [log_begin,
  // log_begin+log_size) shared by `num_writers` lanes. Partitions are
  // cache-line aligned: RDMA (and the simulated bus) is only atomic within a
  // line, so the 8-byte consumed counter in the ring header must not straddle
  // a line boundary — a straddling counter can be read torn against the
  // consumer's publication, yielding a value *larger than ever written* (new
  // high bytes + old low bytes). Writer flow control latches that phantom,
  // over-admits a lap, and the clobbered slots jam the ring permanently.
  static RingGeometry For(uint64_t log_begin, uint64_t log_size, uint32_t num_writers,
                          uint32_t writer, uint64_t max_image_bytes) {
    RingGeometry g;
    const uint64_t aligned_begin = AlignUpToLine(log_begin);
    const uint64_t usable = log_size - (aligned_begin - log_begin);
    const uint64_t per_writer = (usable / num_writers) & ~(kCacheLineSize - 1);
    g.base = aligned_begin + writer * per_writer;
    g.slot_bytes = AlignUpToLine(sizeof(LogSlotHeader) + max_image_bytes);
    g.nslots = (per_writer - 2 * kCacheLineSize) / g.slot_bytes;
    return g;
  }
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_LOG_H_
