// Backup copies of records, maintained on each backup node by applying log
// entries (§5.1: "the backups of records will only be used in recovery").
// Keyed by (table, primary, key); the freshest image wins by seqnum.
#ifndef DRTMR_SRC_REP_BACKUP_STORE_H_
#define DRTMR_SRC_REP_BACKUP_STORE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/store/record.h"

namespace drtmr::rep {

class BackupStore {
 public:
  struct Key {
    uint32_t table;
    uint32_t primary;
    uint64_t key;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t z = k.key + 0x9e3779b97f4a7c15ull * ((static_cast<uint64_t>(k.table) << 32) | k.primary);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  // Applies an image if it is newer than the stored one. An image shorter
  // than the record header cannot carry a seqnum or lock word — it can only
  // come from a corrupt log slot, and must not be applied.
  void Apply(uint32_t table, uint32_t primary, uint64_t key, const std::byte* image, size_t len) {
    if (len < store::RecordLayout::kLine0Payload) {
      return;
    }
    const uint64_t seq = store::RecordLayout::GetSeq(image);
    std::lock_guard<std::mutex> g(mu_);
    auto& e = map_[Key{table, primary, key}];
    if (e.empty() || store::RecordLayout::GetSeq(e.data()) < seq) {
      e.assign(image, image + len);
      // Backup images are always committable and unlocked.
      store::RecordLayout::SetLock(e.data(), 0);
    }
  }

  // Latest image for one record; false if absent.
  bool Get(uint32_t table, uint32_t primary, uint64_t key, std::vector<std::byte>* image) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(Key{table, primary, key});
    if (it == map_.end()) {
      return false;
    }
    *image = it->second;
    return true;
  }

  // Visits every backup entry (recovery). mu_ is held for the whole walk, so
  // the callback must never block on anything a log-applying thread can hold
  // — in particular record locks, whose owner may be inside Apply() right
  // now. Lock-taking consumers use Snapshot() instead.
  void ForEach(const std::function<void(const Key&, const std::vector<std::byte>&)>& fn) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& [k, v] : map_) {
      fn(k, v);
    }
  }

  // Copies the current contents, for consumers that need to acquire record
  // locks per entry (recovery's primary patching): spinning on a lock while
  // holding mu_ deadlocks against a lock holder blocked in Apply().
  std::vector<std::pair<Key, std::vector<std::byte>>> Snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return {map_.begin(), map_.end()};
  }

  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<Key, std::vector<std::byte>, KeyHash> map_;
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_BACKUP_STORE_H_
