// Failure recovery (§5.2), FaRM-style: after the coordinator commits a new
// configuration without the failed machine, a survivor drains all pending log
// entries, re-hosts the failed machine's records from backup copies onto a
// surviving host, patches surviving primaries that missed a write-back
// (writer died between R.1 and C.5), and updates the partition map so new
// transactions route around the dead machine. Dangling locks are released
// passively by the transaction layer (owner-absent check on every lock
// encounter), so recovery does not scan for them.
#ifndef DRTMR_SRC_REP_RECOVERY_H_
#define DRTMR_SRC_REP_RECOVERY_H_

#include <cstdint>

#include "src/cluster/coordinator.h"
#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {

struct RecoveryReport {
  uint64_t records_rehosted = 0;
  uint64_t primaries_patched = 0;
  uint64_t log_entries_drained = 0;
  // Torn tail slots of the dead machine's logs discarded during promotion:
  // the writer died mid-slot, so the transaction behind the slot never
  // reached its commit point and must not be rolled forward.
  uint64_t torn_tail_truncated = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(txn::TxnEngine* engine, PrimaryBackupReplicator* replicator,
                  cluster::Coordinator* coordinator)
      : engine_(engine), replicator_(replicator), coordinator_(coordinator) {}

  // Recovers from the fail-stop of `dead`, reviving its data on `host`.
  // `ctx` must belong to a surviving node. If `pmap` is non-null, every
  // partition owned by `dead` is re-pointed at `host`.
  RecoveryReport RecoverAfterFailure(sim::ThreadContext* ctx, uint32_t dead, uint32_t host,
                                     cluster::PartitionMap* pmap);

 private:
  txn::TxnEngine* engine_;
  PrimaryBackupReplicator* replicator_;
  cluster::Coordinator* coordinator_;
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_RECOVERY_H_
