#include "src/rep/migration.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/store/record.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace drtmr::rep {

using store::LockWord;
using store::RecordLayout;
using store::SeqWord;

MigrationManager::MigrationManager(txn::TxnEngine* engine, PrimaryBackupReplicator* replicator,
                                   cluster::Coordinator* coordinator,
                                   cluster::PartitionMap* pmap, MigrationSpec spec)
    : engine_(engine),
      replicator_(replicator),
      coordinator_(coordinator),
      pmap_(pmap),
      spec_(std::move(spec)) {
  DRTMR_CHECK(spec_.partition_of != nullptr);
  cluster::Cluster* cluster = engine_->cluster();
  ctx_.reserve(cluster->num_nodes());
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    // Same context *slot* as the tool context so HTM descriptor indexing
    // stays in range, but a private ThreadContext object: clock and RNG are
    // not shared with recovery. HTM use through this context (InsertImage)
    // is serialized against recovery's by the table's mutate_mu_.
    ctx_.push_back(std::make_unique<sim::ThreadContext>(
        n, cluster->node(n)->num_slots() - 1, spec_.seed * 7919 + n + 1));
  }
  block_.partition_of = spec_.partition_of;
  engine_->set_migration_block(&block_);
}

sim::ThreadContext* MigrationManager::ctx_of(uint32_t node) { return ctx_[node].get(); }

std::vector<std::pair<uint32_t, uint32_t>> MigrationManager::PlanRebalance(
    const cluster::PartitionMap& pmap, uint32_t active_nodes) {
  std::vector<std::pair<uint32_t, uint32_t>> moves;
  DRTMR_CHECK(active_nodes > 0);
  for (uint32_t p = 0; p < pmap.num_partitions(); ++p) {
    const uint32_t want = p % active_nodes;
    if (pmap.node_of(p) != want) {
      moves.emplace_back(p, want);
    }
  }
  return moves;
}

bool MigrationManager::DrainInflightCommits() {
  cluster::Cluster* cluster = engine_->cluster();
  // Real-time bail: commits run in real time, so a drain that does not
  // converge within this budget means the cluster is wedged (e.g. every
  // worker frozen by a fault window) and the migration should roll back
  // rather than hang the control thread forever.
  // drtmr-lint: allow(wallclock): wedge watchdog on real threads; never feeds protocol state
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (uint32_t i = 0; i < cluster->num_nodes(); ++i) {
    while (cluster->node(i)->inflight_commits() != 0) {
      // drtmr-lint: allow(wallclock): wedge watchdog on real threads; never feeds protocol state
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::yield();
    }
  }
  return true;
}

uint64_t MigrationManager::WorkerFrontierNs() {
  cluster::Cluster* cluster = engine_->cluster();
  uint64_t frontier = 0;
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    const uint64_t now = cluster->node(n)->context(0)->clock.now_ns();
    frontier = now > frontier ? now : frontier;
  }
  return frontier;
}

void MigrationManager::PaceToWorkers(sim::ThreadContext* ctx) {
  // The booking horizon of the shared NIC timelines (SimResource) assumes
  // clock skew stays small; keep the pump's lead at a quarter of it.
  constexpr uint64_t kMaxLeadNs = 500'000;
  // Real time after which an unmoving frontier means "no workers running".
  constexpr auto kStale = std::chrono::milliseconds(5);
  const auto observe = [&] {
    const uint64_t f = WorkerFrontierNs();
    if (f > pace_frontier_ns_) {
      pace_frontier_ns_ = f;
      // drtmr-lint: allow(wallclock): staleness stamp detects stopped workers, not protocol time
      pace_moved_at_ = std::chrono::steady_clock::now();
    }
  };
  observe();
  while (ctx->clock.now_ns() > pace_frontier_ns_ + kMaxLeadNs &&
         // drtmr-lint: allow(wallclock): staleness window vs. real stopped workers
         std::chrono::steady_clock::now() - pace_moved_at_ < kStale) {
    std::this_thread::yield();
    observe();
  }
}

void MigrationManager::StampMembers(uint64_t epoch) {
  cluster::Cluster* cluster = engine_->cluster();
  if (!cluster->fabric()->epoch_fencing()) {
    return;
  }
  // Same mechanism as the membership driver: monotone raise by direct bus
  // CAS (control-plane write — reaches every member and dooms HTM regions
  // that read the word). The manager stamps itself rather than waiting on
  // the membership driver thread, so a frozen driver cannot stall cutover.
  for (uint32_t m : coordinator_->view().members) {
    sim::MemoryBus* bus = cluster->node(m)->bus();
    while (true) {
      const uint64_t cur = bus->ReadU64(nullptr, sim::Fabric::kEpochWordOff);
      if (cur >= epoch) {
        break;
      }
      uint64_t obs = 0;
      // drtmr-lint: allow(registered-memory): control-plane epoch stamp, deliberately unpaced
      if (bus->CasU64(nullptr, sim::Fabric::kEpochWordOff, cur, epoch, &obs)) {
        break;
      }
    }
  }
}

void MigrationManager::Rollback(uint32_t partition, MigrationReport* report, Status why) {
  // Order matters: close write admission first so blocked writers stop
  // aborting, then clear the routing flag. Destination-side copies stay
  // behind as freshest-wins debris unreachable through the partition map.
  block_.Deactivate();
  pmap_->SetMigrating(partition, false);
  report->status = why;
  report->rolled_back = true;
  ++rolled_back_;
}

Status MigrationManager::CopyPass(uint32_t partition, uint32_t src, uint32_t dst,
                                  bool final_pass, uint64_t* refreshed) {
  *refreshed = 0;
  cluster::Cluster* cluster = engine_->cluster();
  sim::ThreadContext* dctx = ctx_of(dst);
  sim::RdmaNic* nic = cluster->node(dst)->nic();
  const bool rep = engine_->config().replication;

  for (store::Table* table : spec_.tables) {
    DRTMR_CHECK(table->kind() == store::StoreKind::kHash)
        << "live migration supports hash tables only";
    // Enumerate under the source store's mutation lock, then release it
    // before the remote reads — holding it across the pull would block the
    // source's live inserts for the whole pass.
    std::vector<std::pair<uint64_t, uint64_t>> keys;
    table->hash(src)->ForEachKey([&](uint64_t key, uint64_t off) {
      if (spec_.partition_of(key) == partition) {
        keys.emplace_back(key, off);
      }
    });

    const size_t rec_bytes = table->record_bytes();

    // A pulled image is clean when it can become the destination's copy:
    // consistent per-line versions, unlocked, and (under replication) an even
    // seq — a mid-commit image must never cross homes.
    const auto clean_image = [&](const std::byte* image) {
      const uint64_t seq = RecordLayout::GetSeq(image);
      return RecordLayout::ImageConsistent(image, rec_bytes) && !SeqWord::Locked(seq) &&
             !LockWord::IsLocked(RecordLayout::GetLock(image)) &&
             (!rep || (SeqWord::Value(seq) & 1ull) == 0);
    };
    // Installs a clean image on the destination unless it already holds a
    // copy at least as fresh — the per-pass refresh count is the convergence
    // signal for the delta chase.
    const auto install = [&](uint64_t key, std::byte* image) -> Status {
      const uint64_t src_seq = SeqWord::Value(RecordLayout::GetSeq(image));
      const uint64_t dst_off = table->hash(dst)->Lookup(nullptr, key);
      if (dst_off != store::HashStore::kNoRecord) {
        uint64_t dst_seq = 0;
        cluster->node(dst)->bus()->Read(nullptr, dst_off + RecordLayout::kSeqOff, &dst_seq,
                                        sizeof(dst_seq));
        if (SeqWord::Value(dst_seq) >= src_seq) {
          return Status::kOk;
        }
      }
      // Never copy the source's lock word: a committer's lock names a record
      // *on the source*; carrying it over would plant a dangling lock.
      RecordLayout::SetLock(image, LockWord::kUnlocked);
      const Status ins = table->hash(dst)->InsertImage(dctx, key, image, rec_bytes);
      if (ins == Status::kOk) {
        ++*refreshed;
      }
      return ins;
    };

    // Extent-coalesced bulk pull. The loader and allocator lay a partition's
    // records out in near-contiguous runs of registered memory, so instead of
    // one verb per record (message-rate bound — the NIC busy that congests
    // the foreground), sort the records by offset, coalesce them into large
    // extents (small gaps are read as dead bytes; bandwidth is cheap, verbs
    // are not), and pull each extent with one posted READ, fencing once per
    // window. Records whose image came back dirty (mid-commit, locked, torn)
    // fall out to the serial retry pull below.
    std::sort(keys.begin(), keys.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    constexpr uint64_t kGapSlackBytes = 1024;    // merge across holes up to this
    constexpr uint64_t kMaxExtentBytes = 65536;  // one READ's payload ceiling
    constexpr uint64_t kWindowBytes = 262144;    // fence granularity
    struct Extent {
      uint64_t off = 0;       // source offset of the extent
      uint64_t len = 0;       // bytes covered
      size_t scratch = 0;     // position in the window's scratch buffer
      size_t first_rec = 0;   // index into `keys` of the extent's first record
      size_t nrecs = 0;
    };
    std::vector<Extent> extents;
    for (size_t i = 0; i < keys.size(); ++i) {
      const uint64_t off = keys[i].second;
      if (!extents.empty()) {
        Extent& cur = extents.back();
        const uint64_t end = cur.off + cur.len;
        if (off <= end + kGapSlackBytes && off + rec_bytes - cur.off <= kMaxExtentBytes) {
          cur.len = std::max(cur.len, off + rec_bytes - cur.off);
          cur.nrecs++;
          continue;
        }
      }
      extents.push_back(Extent{off, rec_bytes, 0, i, 1});
    }
    std::vector<std::byte> scratch;
    std::vector<std::pair<uint64_t, uint64_t>> retry;
    for (size_t e = 0; e < extents.size();) {
      PaceToWorkers(dctx);
      if (cluster->node(src)->killed() || cluster->node(dst)->killed()) {
        return Status::kUnavailable;
      }
      // One window: consecutive extents up to the fence granularity.
      size_t window_end = e;
      uint64_t window_bytes = 0;
      while (window_end < extents.size() && window_bytes < kWindowBytes) {
        extents[window_end].scratch = window_bytes;
        window_bytes += extents[window_end].len;
        window_end++;
      }
      scratch.resize(window_bytes);
      uint64_t completion = 0;
      for (size_t i = e; i < window_end; ++i) {
        const Status s = nic->ReadPosted(dctx, src, extents[i].off,
                                         scratch.data() + extents[i].scratch, extents[i].len,
                                         &completion);
        if (s != Status::kOk) {
          return s;  // source dead or unreachable — abort the migration
        }
      }
      nic->Fence(dctx, completion, cluster->cost()->rdma_read_ns);
      for (size_t i = e; i < window_end; ++i) {
        const Extent& ext = extents[i];
        for (size_t r = ext.first_rec; r < ext.first_rec + ext.nrecs; ++r) {
          const uint64_t key = keys[r].first;
          std::byte* image = scratch.data() + ext.scratch + (keys[r].second - ext.off);
          if (RecordLayout::GetKey(image) != key) {
            continue;  // slot recycled under us; the key is gone
          }
          if (!clean_image(image)) {
            retry.emplace_back(keys[r]);
            continue;
          }
          if (const Status ins = install(key, image); ins != Status::kOk) {
            return ins;
          }
        }
      }
      e = window_end;
    }

    // Serial retry pull for the dirty residue (a handful of records caught
    // mid-commit), with jittered backoff between attempts.
    std::vector<std::byte> image(rec_bytes);
    for (const auto& [key, off] : retry) {
      PaceToWorkers(dctx);
      if (cluster->node(src)->killed() || cluster->node(dst)->killed()) {
        return Status::kUnavailable;
      }
      util::Backoff backoff = util::Backoff::Exponential(200, 800, /*max_shift=*/6);
      bool clean = false;
      for (uint32_t attempt = 0; attempt <= spec_.copy_retry_limit; ++attempt) {
        const Status s = nic->ReadTimeout(dctx, src, off, image.data(), rec_bytes,
                                          spec_.copy_read_timeout_ns);
        if (s == Status::kUnavailable) {
          return s;  // source dead or unreachable — abort the migration
        }
        if (s == Status::kOk) {
          if (RecordLayout::GetKey(image.data()) != key) {
            break;  // slot recycled under us; the key is gone
          }
          if (clean_image(image.data())) {
            clean = true;
            break;
          }
        }
        dctx->Charge(backoff.NextDelay(&dctx->rng));
      }
      if (!clean) {
        if (!final_pass) {
          continue;  // the next pass re-covers it
        }
        // Final pass with the source write-quiesced: a record that still
        // never yields a clean image is wedged (e.g. a leaked lock) — fail
        // the migration rather than cut over with a stale copy.
        return Status::kConflict;
      }
      if (RecordLayout::GetKey(image.data()) != key) {
        continue;
      }
      if (const Status ins = install(key, image.data()); ins != Status::kOk) {
        return ins;
      }
    }
  }
  return Status::kOk;
}

uint64_t MigrationManager::ReseedBackups(uint32_t partition, uint32_t dst) {
  if (replicator_ == nullptr || replicator_->config().replicas <= 1) {
    return 0;
  }
  cluster::Cluster* cluster = engine_->cluster();
  const uint32_t replicas = replicator_->config().replicas;
  uint64_t seeded = 0;
  for (store::Table* table : spec_.tables) {
    std::vector<std::pair<uint64_t, uint64_t>> keys;
    table->hash(dst)->ForEachKey([&](uint64_t key, uint64_t off) {
      if (spec_.partition_of(key) == partition) {
        keys.emplace_back(key, off);
      }
    });
    const size_t rec_bytes = table->record_bytes();
    std::vector<std::byte> image(rec_bytes);
    for (const auto& [key, off] : keys) {
      cluster->node(dst)->bus()->Read(nullptr, off, image.data(), rec_bytes);
      // The destination is the record's primary after cutover, so its backup
      // ring must hold the image under {table, dst, key} (the cascaded-
      // failover rule recovery applies when re-hosting). Apply is
      // freshest-wins, so racing with post-cutover writers is harmless; the
      // old copies under the source's name become unreferenced debris.
      for (uint32_t r = 1; r < replicas; ++r) {
        replicator_->SeedBackup(cluster->BackupOf(dst, r), table->id(), dst, key, image.data(),
                                rec_bytes);
        ++seeded;
      }
    }
  }
  return seeded;
}

MigrationReport MigrationManager::MigratePartition(uint32_t partition, uint32_t dst) {
  MigrationReport r;
  r.partition = partition;
  r.destination = dst;
  cluster::Cluster* cluster = engine_->cluster();
  DRTMR_CHECK(partition < pmap_->num_partitions() && dst < cluster->num_nodes());
  const uint32_t src = pmap_->node_of(partition);
  r.source = src;
  // Write safety depends on epoch fencing: without it, a transaction that
  // routed its writes before the flip could commit them on the old home
  // after the drain window closes. Refuse rather than migrate unsafely.
  if (!engine_->fencing() || src == dst || pmap_->migrating(partition) ||
      cluster->node(src)->killed() || cluster->node(dst)->killed()) {
    r.status = Status::kInvalid;
    return r;
  }
  ++started_;

  // Fast-forward the control clocks to the worker frontier so RDMA costs and
  // timeouts are charged at current virtual time (contexts are not gate
  // registered — migration runs in real time, like recovery).
  const uint64_t frontier = WorkerFrontierNs();
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    ctx_of(n)->clock.AdvanceTo(frontier);
  }
  const uint64_t t0 = ctx_of(dst)->clock.now_ns();

  // Phase 1: bulk copy + delta chase, source still committing.
  uint64_t refreshed = 0;
  for (uint32_t pass = 0; pass < spec_.max_bulk_passes; ++pass) {
    ++r.bulk_passes;
    const Status s = CopyPass(partition, src, dst, /*final_pass=*/false, &refreshed);
    r.records_copied += refreshed;
    if (s != Status::kOk) {
      Rollback(partition, &r, s);
      return r;
    }
    if (refreshed <= spec_.cutover_delta) {
      break;  // delta small enough to close under the drain window
    }
  }

  // Phase 2: open the drain window. New writes to the partition — on either
  // home, which matters once the map flips in phase 5 — abort with
  // kMigrating (reads keep flowing); in-flight commits drain out.
  pmap_->SetMigrating(partition, true);
  block_.Activate(partition);
  if (!DrainInflightCommits()) {
    Rollback(partition, &r, Status::kTimeout);
    return r;
  }
  if (cluster->node(src)->killed() || cluster->node(dst)->killed()) {
    Rollback(partition, &r, Status::kUnavailable);
    return r;
  }

  // Phase 3: final delta copy against the quiesced source. After this the
  // two homes agree — the dual-home window.
  const Status fin = CopyPass(partition, src, dst, /*final_pass=*/true, &refreshed);
  r.records_copied += refreshed;
  if (fin != Status::kOk) {
    Rollback(partition, &r, fin);
    return r;
  }

  // Phase 4: restore the replication invariant under the new primary's name.
  r.backups_seeded = ReseedBackups(partition, dst);

  if (hooks_.on_dual_home) {
    hooks_.on_dual_home();
  }
  if (cluster->node(src)->killed() || cluster->node(dst)->killed()) {
    Rollback(partition, &r, Status::kUnavailable);
    return r;
  }

  // Phase 5: cutover. Commit a new epoch, flip the map entry (monotone CAS —
  // losing to a newer epoch means a concurrent reconfiguration superseded
  // us), fence stragglers by stamping members, drain once more, and only
  // then close the write block: the flip-to-stamp window stays write-free.
  const uint64_t epoch = coordinator_->BumpEpoch();
  if (!pmap_->Rehost(partition, dst, epoch)) {
    Rollback(partition, &r, Status::kConflict);
    return r;
  }
  StampMembers(epoch);
  // Best-effort: pre-stamp stragglers self-fence, so non-convergence here
  // (wedged cluster) no longer endangers the committed flip.
  (void)DrainInflightCommits();
  block_.Deactivate();

  r.epoch = epoch;
  r.duration_ns = ctx_of(dst)->clock.now_ns() - t0;
  r.status = Status::kOk;
  ++committed_;
  return r;
}

}  // namespace drtmr::rep
