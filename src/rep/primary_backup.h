// Primary-backup replication with optimistic commit (§5.1): the transaction
// layer calls ReplicateUpdate (R.1) for every written record between the HTM
// step and the makeup step; this writes one log slot per backup via one-sided
// RDMA WRITE into the backup's NVM ring. Auxiliary threads on each node call
// Pump() to consume rings into the BackupStore and truncate.
#ifndef DRTMR_SRC_REP_PRIMARY_BACKUP_H_
#define DRTMR_SRC_REP_PRIMARY_BACKUP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/node.h"
#include "src/rep/backup_store.h"
#include "src/rep/log.h"
#include "src/txn/replicator.h"
#include "src/util/spinlock.h"

namespace drtmr::rep {

struct RepConfig {
  uint32_t replicas = 3;            // f+1 copies including the primary
  uint64_t max_record_bytes = 512;  // bounds the log slot size
};

class PrimaryBackupReplicator : public txn::Replicator {
 public:
  PrimaryBackupReplicator(cluster::Cluster* cluster, const RepConfig& config);

  // txn::Replicator
  Status ReplicateUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                         uint32_t table_id, uint64_t key, uint64_t record_offset,
                         const std::byte* image, size_t image_len,
                         uint64_t* completion_ns) override;
  void FenceReplication(sim::ThreadContext* ctx, uint64_t completion_ns) override;
  void EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) override;
  void Pump(sim::ThreadContext* ctx) override;

  // Seeds backup copies at load time (initial data placement provides f+1
  // copies without going through the log path).
  void SeedBackup(uint32_t backup_node, uint32_t table_id, uint32_t primary, uint64_t key,
                  const std::byte* image, size_t image_len);

  BackupStore* backup_store(uint32_t node) { return stores_[node].get(); }
  const RepConfig& config() const { return config_; }
  cluster::Cluster* cluster() { return cluster_; }

  // Drains every ring addressed to `node` (used by recovery before reading
  // backup copies; also callable on live nodes).
  void DrainNode(sim::ThreadContext* ctx, uint32_t node);

  // Discards torn slots at the head of `writer`'s ring on `node` and advances
  // the consumed counter past them. Only valid once `writer` is dead: a torn
  // slot is the incomplete tail of its log (in-order delivery means nothing
  // complete follows it), and the transaction behind it never reached its
  // commit point, so discarding is the roll-back the protocol requires
  // (§5.2). Returns the number of slots discarded.
  uint64_t TruncateTornTail(sim::ThreadContext* ctx, uint32_t node, uint32_t writer);

  uint64_t log_writes() const { return log_writes_.load(std::memory_order_relaxed); }
  uint64_t entries_applied() const { return entries_applied_.load(std::memory_order_relaxed); }
  uint64_t torn_slots() const { return torn_slots_.load(std::memory_order_relaxed); }

 private:
  // Consumes at most `budget` slots of writer `writer`'s ring on `node`.
  // `wait` blocks for exclusive ring access (recovery) instead of skipping
  // when another consumer is active (service-thread fast path).
  void PumpRing(sim::ThreadContext* ctx, uint32_t node, uint32_t writer, uint64_t budget,
                bool wait);

  RingGeometry Ring(uint32_t writer) const;

  cluster::Cluster* cluster_;
  RepConfig config_;
  uint32_t num_nodes_;
  std::vector<std::unique_ptr<BackupStore>> stores_;

  // Writer-side: next slot index + last observed consumed count, indexed by
  // [src_node * N + dst_node].
  struct WriterState {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> consumed_seen{0};
  };
  std::vector<std::unique_ptr<WriterState>> writers_;

  // Consumer-side progress, indexed by [consumer_node * N + writer_node].
  // PumpRing may be called by the node's auxiliary thread and by recovery
  // concurrently; pump_mu_ guarantees a single consumer per ring at a time
  // (two interleaved consumers could regress the pointer after a ring wrap
  // and deadlock the writers).
  std::vector<std::atomic<uint64_t>> consumed_;
  std::unique_ptr<Spinlock[]> pump_mu_;

  std::atomic<uint64_t> log_writes_{0};
  std::atomic<uint64_t> entries_applied_{0};
  std::atomic<uint64_t> torn_slots_{0};
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_PRIMARY_BACKUP_H_
