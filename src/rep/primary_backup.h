// Primary-backup replication with doorbell-batched chains and group-commit
// durability (§5.1; DESIGN.md §13). The transaction layer *stages* one
// speculative log slot per written record per backup as early as
// lock-acquire time (StageUpdate), appended onto a per-(lane, backup) verb
// chain so all slots bound for one backup share a single doorbell. The
// commit decision (CommitTxnLog / AbortTxnLog) publishes the lane's
// watermark past the staged slots — committed slots become eligible for the
// backup pump, aborted ones are tombstoned first — and the durability fence
// is amortized across a group-commit window of decisions. Auxiliary threads
// on each node call Pump() to consume rings into the BackupStore and
// truncate; the pump trusts only slots below the watermark.
#ifndef DRTMR_SRC_REP_PRIMARY_BACKUP_H_
#define DRTMR_SRC_REP_PRIMARY_BACKUP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/node.h"
#include "src/rep/backup_store.h"
#include "src/rep/log.h"
#include "src/txn/replicator.h"
#include "src/util/spinlock.h"

namespace drtmr::rep {

struct RepConfig {
  uint32_t replicas = 3;            // f+1 copies including the primary
  uint64_t max_record_bytes = 512;  // bounds the log slot size
  // Group commit: number of commit/abort decisions one worker lane closes
  // before ringing its chains and paying one durability fence for all of
  // them. 1 = fence every transaction (the paper's per-txn R.1 durability).
  uint32_t group_commit_window = 1;
  // Age bound: a decision also flushes if the window has been open this long
  // in virtual time, so a slow lane cannot hold its peers' commits unfenced
  // indefinitely.
  uint64_t group_commit_max_open_ns = 50000;
  // Teeth-test overrides (tests/rep_batching_test.cc): each deliberately
  // breaks one invariant of the slot lifecycle so the serializability
  // checker / protocol analyzer can demonstrate it would catch the bug.
  struct TestOverrides {
    bool pump_ignores_watermark = false;  // pump consumes speculative slots
    bool pump_applies_tombstones = false; // pump applies aborted images
    bool watermark_at_stage = false;      // watermark published before decision
  } test;
};

class PrimaryBackupReplicator : public txn::Replicator {
 public:
  PrimaryBackupReplicator(cluster::Cluster* cluster, const RepConfig& config);

  // txn::Replicator
  Status StageUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                     uint32_t table_id, uint64_t key, uint64_t record_offset,
                     const std::byte* image, size_t image_len) override;
  Status SupersedeUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                         uint32_t table_id, uint64_t key, uint64_t record_offset,
                         const std::byte* image, size_t image_len) override;
  Status CommitTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) override;
  void AbortTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) override;
  void FlushLog(sim::ThreadContext* ctx) override;
  void EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) override;
  void Pump(sim::ThreadContext* ctx) override;

  // Seeds backup copies at load time (initial data placement provides f+1
  // copies without going through the log path).
  void SeedBackup(uint32_t backup_node, uint32_t table_id, uint32_t primary, uint64_t key,
                  const std::byte* image, size_t image_len);

  BackupStore* backup_store(uint32_t node) { return stores_[node].get(); }
  const RepConfig& config() const { return config_; }
  cluster::Cluster* cluster() { return cluster_; }

  // Drains every ring addressed to `node` (used by recovery before reading
  // backup copies; also callable on live nodes). Consumes up to each ring's
  // watermark only: speculative slots belong to undecided transactions.
  void DrainNode(sim::ThreadContext* ctx, uint32_t node);

  // Discards the unusable tail of every ring on `node` written by a lane of
  // machine `writer`: torn slots, and complete-looking slots at or beyond the
  // writer's published watermark (speculative — their transactions never
  // decided, so discarding is the roll-back the protocol requires, §5.2).
  // Only valid once `writer` is dead. Returns the number of slots discarded.
  uint64_t TruncateTornTail(sim::ThreadContext* ctx, uint32_t node, uint32_t writer);

  uint64_t log_writes() const { return log_writes_.load(std::memory_order_relaxed); }
  uint64_t entries_applied() const { return entries_applied_.load(std::memory_order_relaxed); }
  uint64_t torn_slots() const { return torn_slots_.load(std::memory_order_relaxed); }
  // Ring positions the pump consumed without applying because a writer lapped
  // them while this machine was unreachable (its consumer could not run, and
  // the writers' flow-control reads failed): the backup is stale for those
  // keys until freshest-wins Apply or recovery reconciles it.
  uint64_t ring_overruns() const { return ring_overruns_.load(std::memory_order_relaxed); }

  // Writer lane of a context: every context slot on every machine owns one
  // single-writer set of rings, which is what makes the per-lane watermark a
  // well-defined prefix frontier.
  uint32_t LaneOf(const sim::ThreadContext* ctx) const {
    return ctx->node_id * lanes_per_node_ + ctx->worker_id;
  }
  uint32_t num_lanes() const { return num_lanes_; }

  RingGeometry Ring(uint32_t lane) const;

 private:
  // Per-lane, per-destination writer cursors. Owned exclusively by the lane's
  // thread: no atomics needed.
  struct DstState {
    sim::RdmaNic::VerbChain chain;
    uint64_t next = 0;           // next slot index in this lane's ring on dst
    uint64_t watermark = 0;      // decided frontier (mirror of the published word)
    uint64_t consumed_seen = 0;  // flow-control view of the consumer's progress
  };
  struct StagedSlot {
    uint32_t dst;        // backup node (== lane's node for deferred local applies)
    uint64_t index;      // ring index (unused for local applies)
    uint64_t txn_id;
    uint64_t key;
    uint64_t record_off;
    uint32_t table_id;
    uint32_t primary;
    uint32_t image_len;
    std::vector<std::byte> local_image;  // buffered image for dst == lane node
  };
  struct LaneState {
    std::vector<DstState> dst;       // [num_nodes]
    std::vector<StagedSlot> staged;  // current transaction's speculative slots
    uint64_t window_txns = 0;        // decisions since the last fence
    uint64_t window_open_ns = 0;     // virtual time the window opened
    uint64_t completion_ns = 0;      // slowest chain completion this window
  };

  LaneState& Lane(const sim::ThreadContext* ctx) { return *lanes_[LaneOf(ctx)]; }

  // Writes `slot` into the lane's ring on `dst` at `index`, chained onto the
  // lane's open chain for `dst` (falling back to a direct bus write when the
  // verb is refused, so the ring stays continuous). Returns the verb status.
  Status PushSlot(sim::ThreadContext* ctx, LaneState& lane, uint32_t dst, uint64_t index,
                  const void* slot, size_t slot_len);
  // Reserves the next index in the lane's ring on `dst`, builds the slot, and
  // pushes it (with flow control against the consumer). Sets *index_out to
  // the reserved index.
  Status StageSlotTo(sim::ThreadContext* ctx, LaneState& lane, uint32_t dst, uint64_t txn_id,
                     uint32_t primary, uint32_t table_id, uint64_t key, uint64_t record_offset,
                     const std::byte* image, size_t image_len, uint64_t* index_out);
  // Publishes the lane's watermark for `dst` (chain-appended after the slots
  // it covers; FIFO per chain keeps "slots land before their watermark").
  void PublishWatermark(sim::ThreadContext* ctx, LaneState& lane, uint32_t dst);
  // Tombstones one staged remote slot (header rewrite, image left in place).
  void TombstoneSlot(sim::ThreadContext* ctx, LaneState& lane, const StagedSlot& s);
  // Closes one decision: advances watermarks over the staged slots, counts
  // window occupancy, and fences if the window is full (or aged out).
  void CloseDecision(sim::ThreadContext* ctx, LaneState& lane);
  // Rings every open chain and pays the window's durability fence.
  void FlushWindow(sim::ThreadContext* ctx, LaneState& lane);

  // Consumes at most `budget` slots of writer lane `lane`'s ring on `node`.
  // `wait` blocks for exclusive ring access (recovery) instead of skipping
  // when another consumer is active (service-thread fast path).
  void PumpRing(sim::ThreadContext* ctx, uint32_t node, uint32_t lane, uint64_t budget,
                bool wait);

  cluster::Cluster* cluster_;
  RepConfig config_;
  uint32_t num_nodes_;
  uint32_t lanes_per_node_;
  uint32_t num_lanes_;
  std::vector<std::unique_ptr<BackupStore>> stores_;

  std::vector<std::unique_ptr<LaneState>> lanes_;  // [num_lanes]

  // Consumer-side progress, indexed by [consumer_node * num_lanes + lane].
  // PumpRing may be called by the node's auxiliary thread and by recovery
  // concurrently; pump_mu_ guarantees a single consumer per ring at a time
  // (two interleaved consumers could regress the pointer after a ring wrap
  // and deadlock the writers).
  std::vector<std::atomic<uint64_t>> consumed_;
  std::unique_ptr<Spinlock[]> pump_mu_;

  std::atomic<uint64_t> log_writes_{0};
  std::atomic<uint64_t> entries_applied_{0};
  std::atomic<uint64_t> torn_slots_{0};
  std::atomic<uint64_t> ring_overruns_{0};
};

}  // namespace drtmr::rep

#endif  // DRTMR_SRC_REP_PRIMARY_BACKUP_H_
