// Conservative time-window synchronization for the virtual-time simulation.
//
// Worker threads advance private virtual clocks, but the host may have fewer
// physical cores than simulated threads: a lock holder can be descheduled for
// milliseconds of real time while waiters spin, charging virtual time for
// thousands of retries that could never happen on real hardware. The TimeGate
// bounds the skew: a thread whose clock is more than `window` ahead of the
// slowest active clock blocks (in real time) until the laggard catches up —
// the standard conservative time-window scheme from parallel discrete-event
// simulation. Every spin loop in the system charges virtual time, so active
// threads always advance and the gate cannot deadlock; threads must be marked
// Done when they stop advancing (quota reached or machine killed).
#ifndef DRTMR_SRC_UTIL_TIME_GATE_H_
#define DRTMR_SRC_UTIL_TIME_GATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/sim_clock.h"

namespace drtmr {

class TimeGate {
 public:
  explicit TimeGate(uint64_t window_ns = 100000) : window_ns_(window_ns) {}

  // Registration happens before the workers start (not thread-safe).
  uint32_t AddClock(const SimClock* clock) {
    entries_.push_back(std::make_unique<Entry>(clock));
    return static_cast<uint32_t>(entries_.size() - 1);
  }

  void Done(uint32_t id) { entries_[id]->done.store(true, std::memory_order_release); }

  // Blocks while `mine` is more than window ahead of the slowest active clock.
  void Sync(const SimClock* mine) const {
    while (true) {
      uint64_t min_ns = ~0ull;
      for (const auto& e : entries_) {
        if (e->done.load(std::memory_order_acquire)) {
          continue;
        }
        const uint64_t now = e->clock->now_ns();
        if (now < min_ns) {
          min_ns = now;
        }
      }
      if (min_ns == ~0ull || mine->now_ns() <= min_ns + window_ns_) {
        return;
      }
      std::this_thread::yield();
    }
  }

 private:
  struct Entry {
    explicit Entry(const SimClock* c) : clock(c) {}
    const SimClock* clock;
    std::atomic<bool> done{false};
  };

  uint64_t window_ns_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_TIME_GATE_H_
