// Cache-line geometry shared by the HTM simulator, the RDMA memory bus, and
// the record layout. DrTM+R's protocol is defined in terms of cache lines:
// HTM tracks conflicts per line, RDMA WRITE is atomic only within a line, and
// records carry a 16-bit version at the head of every line after the first.
#ifndef DRTMR_SRC_UTIL_CACHELINE_H_
#define DRTMR_SRC_UTIL_CACHELINE_H_

#include <cstddef>
#include <cstdint>

namespace drtmr {

inline constexpr size_t kCacheLineSize = 64;

// Line index covering byte `offset`.
constexpr uint64_t LineOf(uint64_t offset) { return offset / kCacheLineSize; }

// First line index strictly after the range [offset, offset + len).
constexpr uint64_t LineEnd(uint64_t offset, size_t len) {
  return len == 0 ? LineOf(offset) : LineOf(offset + len - 1) + 1;
}

constexpr uint64_t AlignUpToLine(uint64_t offset) {
  return (offset + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

constexpr bool IsLineAligned(uint64_t offset) { return (offset % kCacheLineSize) == 0; }

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_CACHELINE_H_
