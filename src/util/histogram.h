// Log-bucketed latency histogram. Records nanosecond samples into power-of-two
// buckets subdivided 16 ways, supporting percentile extraction without storing
// raw samples. Single-writer; merge across threads at report time.
//
// The bucket layout (BucketFor / BucketUpperBound / kNumBuckets) is public so
// that external sharded collectors (src/obs) can accumulate compatible bucket
// arrays lock-free and fold them in with MergeFrom at snapshot time.
#ifndef DRTMR_SRC_UTIL_HISTOGRAM_H_
#define DRTMR_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace drtmr {

class Histogram {
 public:
  // 64 exponents x 16 sub-buckets covers [0, 2^63].
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr size_t kNumBuckets = (64 - kSubBits + 1) * kSub;

  static size_t BucketFor(uint64_t ns) {
    if (ns < kSub) {
      return static_cast<size_t>(ns);
    }
    const int exp = 63 - __builtin_clzll(ns);
    const int sub = static_cast<int>((ns >> (exp - kSubBits)) & (kSub - 1));
    return static_cast<size_t>((exp - kSubBits + 1) * kSub + sub);
  }

  static uint64_t BucketUpperBound(size_t bucket) {
    if (bucket < kSub) {
      return bucket;
    }
    const uint64_t exp = bucket / kSub + kSubBits - 1;
    const uint64_t sub = bucket % kSub;
    return (1ull << exp) + ((sub + 1) << (exp - kSubBits)) - 1;
  }

  void Record(uint64_t ns) {
    if (count_ == 0 || ns < min_) {
      min_ = ns;
    }
    count_++;
    sum_ += ns;
    if (ns > max_) {
      max_ = ns;
    }
    buckets_[BucketFor(ns)]++;
  }

  void Merge(const Histogram& other) {
    // An empty histogram contributes nothing; in particular its min_ sentinel
    // must not clobber a genuine 0 ns minimum on either side.
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  // Folds in an externally-accumulated bucket array laid out by BucketFor
  // (e.g. one obs::Registry shard). `min` is only meaningful when count > 0.
  void MergeFrom(const uint64_t* buckets, uint64_t count, uint64_t sum, uint64_t min,
                 uint64_t max) {
    if (count == 0) {
      return;
    }
    if (count_ == 0 || min < min_) {
      min_ = min;
    }
    count_ += count;
    sum_ += sum;
    if (max > max_) {
      max_ = max;
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += buckets[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  // 0 when empty (no samples recorded); otherwise the smallest sample, which
  // may itself be a genuine 0 ns.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  bool empty() const { return count_ == 0; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Approximate percentile (p in [0,100]) as the upper bound of the bucket
  // containing the p-th sample, clamped to [min, max].
  uint64_t Percentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
    if (rank >= count_) {
      rank = count_ - 1;
    }
    if (rank == 0) {
      return min_;  // the 0th sample is the minimum, exactly
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) {
        uint64_t ub = BucketUpperBound(i);
        if (ub > max_) {
          ub = max_;
        }
        return ub < min_ ? min_ : ub;
      }
    }
    return max_;
  }

  // Percentile with linear interpolation inside the containing bucket.
  // Percentile() reports bucket upper bounds, so a tail that straddles a
  // bucket boundary makes the reported value jump a whole log-bucket width
  // (~6% at 16 sub-buckets, and the jump lands exactly where regression gates
  // look). The interpolated value is continuous in the sample distribution:
  // gated bench results use this, operational printouts keep Percentile().
  double PercentileInterpolated(double p) const {
    if (count_ == 0) {
      return 0.0;
    }
    const double rank = p / 100.0 * static_cast<double>(count_ - 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      const uint64_t in_bucket = buckets_[i];
      if (in_bucket == 0) {
        continue;
      }
      if (static_cast<double>(seen + in_bucket) > rank) {
        const uint64_t lo = i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
        const uint64_t hi = BucketUpperBound(i);
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
        double v = static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
        if (v < static_cast<double>(min_)) {
          v = static_cast<double>(min_);
        }
        if (v > static_cast<double>(max_)) {
          v = static_cast<double>(max_);
        }
        return v;
      }
      seen += in_bucket;
    }
    return static_cast<double>(max_);
  }

  void Reset() { *this = Histogram(); }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;  // valid only when count_ > 0
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_HISTOGRAM_H_
