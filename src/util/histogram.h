// Log-bucketed latency histogram. Records nanosecond samples into power-of-two
// buckets subdivided 16 ways, supporting percentile extraction without storing
// raw samples. Single-writer; merge across threads at report time.
#ifndef DRTMR_SRC_UTIL_HISTOGRAM_H_
#define DRTMR_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace drtmr {

class Histogram {
 public:
  void Record(uint64_t ns) {
    count_++;
    sum_ += ns;
    if (ns > max_) {
      max_ = ns;
    }
    if (min_ == 0 || ns < min_) {
      min_ = ns;
    }
    buckets_[BucketFor(ns)]++;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    if (min_ == 0 || (other.min_ != 0 && other.min_ < min_)) {
      min_ = other.min_;
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  uint64_t min() const { return min_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Approximate percentile (p in [0,100]) as the upper bound of the bucket
  // containing the p-th sample.
  uint64_t Percentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
    if (rank >= count_) {
      rank = count_ - 1;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > rank) {
        const uint64_t ub = UpperBound(i);
        return ub < max_ ? ub : max_;
      }
    }
    return max_;
  }

  void Reset() { *this = Histogram(); }

 private:
  // 64 exponents x 16 sub-buckets covers [0, 2^63].
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;

  static size_t BucketFor(uint64_t ns) {
    if (ns < kSub) {
      return static_cast<size_t>(ns);
    }
    const int exp = 63 - __builtin_clzll(ns);
    const int sub = static_cast<int>((ns >> (exp - kSubBits)) & (kSub - 1));
    return static_cast<size_t>((exp - kSubBits + 1) * kSub + sub);
  }

  static uint64_t UpperBound(size_t bucket) {
    if (bucket < kSub) {
      return bucket;
    }
    const uint64_t exp = bucket / kSub + kSubBits - 1;
    const uint64_t sub = bucket % kSub;
    return (1ull << exp) + ((sub + 1) << (exp - kSubBits)) - 1;
  }

  std::array<uint64_t, (64 - kSubBits + 1) * kSub> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_HISTOGRAM_H_
