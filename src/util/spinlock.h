// Yielding test-and-test-and-set spinlock. The simulator runs many logical
// worker threads on few (possibly one) physical cores, so every spin path
// must yield to let the lock holder run.
#ifndef DRTMR_SRC_UTIL_SPINLOCK_H_
#define DRTMR_SRC_UTIL_SPINLOCK_H_

#include <atomic>
#include <thread>

namespace drtmr {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinsBeforeYield = 64;
  std::atomic<bool> flag_{false};
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_SPINLOCK_H_
