// Seed plumbing for randomized tests: every randomized suite derives its
// seeds from TestSeed() and prints the value in its failure message, so a CI
// failure reproduces with
//   DRTMR_TEST_SEED=<printed seed> ctest -R <test> --output-on-failure
// EnvCount() scales sweep sizes (e.g. DRTMR_TORTURE_SEEDS) the same way.
#ifndef DRTMR_SRC_UTIL_TEST_SEED_H_
#define DRTMR_SRC_UTIL_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>

namespace drtmr::util {

inline uint64_t EnvCount(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  return end == s ? fallback : static_cast<uint64_t>(v);
}

// Base seed for randomized tests; override with DRTMR_TEST_SEED.
inline uint64_t TestSeed(uint64_t fallback = 1) { return EnvCount("DRTMR_TEST_SEED", fallback); }

// Derives a per-site RNG seed from a test's historical fixed seed: with
// DRTMR_TEST_SEED unset (or 1) this is exactly `base`, so default runs keep
// their long-standing seeds; any other value shifts every site by a
// golden-ratio multiple so the whole suite explores a fresh schedule.
inline uint64_t DeriveSeed(uint64_t base) {
  return base + (TestSeed(1) - 1) * 0x9e3779b97f4a7c15ull;
}

}  // namespace drtmr::util

#endif  // DRTMR_SRC_UTIL_TEST_SEED_H_
