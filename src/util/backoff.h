// One backoff policy to rule the retry loops. Before this header existed,
// three near-identical-but-divergent policies lived in the tree: the
// remote-lock dangling CAS jitter in txn/transaction.cc, the workload-level
// RetryBackoff, and the local-read HTM retry in txn/txn_engine.cc. Each
// computed "random delay, escalating with attempts" slightly differently,
// which made it impossible to reason about retry storms (e.g. the
// kMigrating drain window) in one place.
//
// Backoff computes a *delay in virtual nanoseconds*; the caller charges it
// (ctx->Charge(delay)) or sleeps it, so the policy stays usable from both
// gated worker threads and free-running control-plane contexts. Jitter is
// deterministic: it comes from the caller's FastRand, which is seeded from
// the test seed, so every retry schedule replays exactly under a fixed seed.
//
// Two shapes cover every policy in the tree:
//   Exponential(lo, hi, max_shift, cap): Range(lo, hi) << min(attempt,
//       max_shift), clamped to cap. With cap = kNoCap this reproduces the
//       historical workload::RetryBackoff byte-for-byte (lo=400, hi=1600,
//       max_shift=7).
//   Linear(lo, hi): Range(lo, hi) * (attempt + 1). Reproduces the historical
//       local-read HTM retry byte-for-byte (lo=50, hi=400).
#ifndef DRTMR_SRC_UTIL_BACKOFF_H_
#define DRTMR_SRC_UTIL_BACKOFF_H_

#include <cstdint>

#include "src/util/rand.h"

namespace drtmr::util {

class Backoff {
 public:
  static constexpr uint64_t kNoCap = ~0ull;

  static Backoff Exponential(uint64_t lo_ns, uint64_t hi_ns, uint32_t max_shift,
                             uint64_t cap_ns = kNoCap) {
    return Backoff(Shape::kExponential, lo_ns, hi_ns, max_shift, cap_ns);
  }

  static Backoff Linear(uint64_t lo_ns, uint64_t hi_ns) {
    return Backoff(Shape::kLinear, lo_ns, hi_ns, 0, kNoCap);
  }

  // Delay for attempt index `attempt` (0-based), without touching the
  // internal counter — for callers whose retry loop tracks attempts itself.
  // The RNG draw happens on every call (even when the shifted value would
  // saturate the cap) so the consumption pattern of the caller's FastRand
  // stays stable.
  uint64_t DelayAt(uint32_t attempt, FastRand* rng) const {
    if (shape_ == Shape::kExponential) {
      const uint32_t shift = attempt < max_shift_ ? attempt : max_shift_;
      const uint64_t delay = rng->Range(lo_ns_, hi_ns_) << shift;
      return delay > cap_ns_ ? cap_ns_ : delay;
    }
    return rng->Range(lo_ns_, hi_ns_) * (attempt + 1);
  }

  // Delay for the next retry; advances the attempt counter.
  uint64_t NextDelay(FastRand* rng) { return DelayAt(attempt_++, rng); }

  uint32_t attempts() const { return attempt_; }
  void Reset() { attempt_ = 0; }

 private:
  enum class Shape : uint8_t { kExponential, kLinear };

  Backoff(Shape shape, uint64_t lo, uint64_t hi, uint32_t max_shift, uint64_t cap)
      : shape_(shape), lo_ns_(lo), hi_ns_(hi), max_shift_(max_shift), cap_ns_(cap) {}

  Shape shape_;
  uint64_t lo_ns_;
  uint64_t hi_ns_;
  uint32_t max_shift_;
  uint64_t cap_ns_;
  uint32_t attempt_ = 0;
};

}  // namespace drtmr::util

#endif  // DRTMR_SRC_UTIL_BACKOFF_H_
