// Fast per-thread pseudo-random generators for workload generation and
// randomized backoff. xoshiro256** — splittable, fast, and good enough for
// benchmark-grade distributions.
#ifndef DRTMR_SRC_UTIL_RAND_H_
#define DRTMR_SRC_UTIL_RAND_H_

#include <cstdint>

namespace drtmr {

class FastRand {
 public:
  explicit FastRand(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 to spread the seed across state words.
    uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Bernoulli draw with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  // TPC-C NURand(A, x, y): non-uniform random per the TPC-C spec §2.1.6.
  uint64_t NuRand(uint64_t a, uint64_t x, uint64_t y) {
    const uint64_t c = c_ & a;
    return (((Range(0, a) | Range(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  uint64_t c_ = 0x6d7e4ca1u;  // NURand constant, fixed per run as the spec allows.
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_RAND_H_
