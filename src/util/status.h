// Lightweight status codes used across the transaction and simulation layers.
// The protocol paths are hot and exception-free; every fallible operation
// returns a Status (or a value + Status pair) that callers must check — the
// [[nodiscard]] below makes the compiler enforce that. Deliberate
// fire-and-forget calls (posted unlocks, best-effort dangling-lock steals)
// cast to void with a comment explaining why the result does not matter.
#ifndef DRTMR_SRC_UTIL_STATUS_H_
#define DRTMR_SRC_UTIL_STATUS_H_

#include <cstdint>

namespace drtmr {

enum class [[nodiscard]] Status : uint8_t {
  kOk = 0,
  kNotFound,       // key absent from a store
  kExists,         // insert hit an existing key
  kConflict,       // lock held / validation failed / CAS lost
  kAborted,        // transaction aborted (retryable)
  kCapacity,       // HTM capacity or store full
  kUnavailable,    // target machine dead or unreachable
  kInvalid,        // caller error (bad arguments, wrong state)
  kStale,          // incarnation mismatch (record freed/reused)
  kStaleEpoch,     // issuer fenced out of the current configuration epoch
  kTimeout,        // bounded retry/poll budget exhausted
  kMigrating,      // target partition is in its migration write-drain window
};

constexpr bool IsOk(Status s) { return s == Status::kOk; }

constexpr const char* StatusString(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kNotFound:
      return "not-found";
    case Status::kExists:
      return "exists";
    case Status::kConflict:
      return "conflict";
    case Status::kAborted:
      return "aborted";
    case Status::kCapacity:
      return "capacity";
    case Status::kUnavailable:
      return "unavailable";
    case Status::kInvalid:
      return "invalid";
    case Status::kStale:
      return "stale";
    case Status::kStaleEpoch:
      return "stale-epoch";
    case Status::kTimeout:
      return "timeout";
    case Status::kMigrating:
      return "migrating";
  }
  return "unknown";
}

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_STATUS_H_
