// Minimal leveled logging. Off-by-default below WARNING so benchmark paths
// stay quiet; tests and examples can raise the level.
#ifndef DRTMR_SRC_UTIL_LOGGING_H_
#define DRTMR_SRC_UTIL_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace drtmr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

inline std::atomic<int>& LogThreshold() {
  static std::atomic<int> threshold{static_cast<int>(LogLevel::kWarning)};
  return threshold;
}

inline void SetLogLevel(LogLevel level) { LogThreshold().store(static_cast<int>(level)); }

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelChar(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (static_cast<int>(level_) >= LogThreshold().load(std::memory_order_relaxed)) {
      stream_ << "\n";
      std::fputs(stream_.str().c_str(), stderr);
    }
    if (level_ == LogLevel::kFatal) {
      std::abort();
    }
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static char LevelChar(LogLevel level) { return "DIWEF"[static_cast<int>(level)]; }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace drtmr

#define DRTMR_LOG(level) ::drtmr::LogMessage(::drtmr::LogLevel::k##level, __FILE__, __LINE__).stream()

#define DRTMR_CHECK(cond)                                                 \
  if (!(cond)) DRTMR_LOG(Fatal) << "check failed: " #cond << " "

#endif  // DRTMR_SRC_UTIL_LOGGING_H_
