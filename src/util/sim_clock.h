// Per-thread virtual clock. The host machine may have a single physical core,
// so wall-clock time cannot reproduce the paper's thread-scaling behaviour.
// Instead every simulated operation *charges* nanoseconds to the issuing
// worker thread's SimClock; shared resources (a node's NIC) are reserved in
// simulated time, which reproduces queuing and saturation. Throughput is
// computed as committed transactions divided by the maximum per-thread
// simulated time, exactly as if the threads had run in parallel.
#ifndef DRTMR_SRC_UTIL_SIM_CLOCK_H_
#define DRTMR_SRC_UTIL_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/util/spinlock.h"

namespace drtmr {

class SimClock {
 public:
  uint64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  void Advance(uint64_t ns) { now_ns_.store(now_ns() + ns, std::memory_order_relaxed); }
  // Jump forward to an absolute simulated time (used after waiting on a
  // shared resource whose free slot is in the future). Never moves backward.
  void AdvanceTo(uint64_t abs_ns) {
    if (abs_ns > now_ns()) {
      now_ns_.store(abs_ns, std::memory_order_relaxed);
    }
  }
  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  // Single writer (the owning thread); racy readers (TimeGate) tolerate
  // slightly stale values.
  std::atomic<uint64_t> now_ns_{0};
};

// A shared resource reserved in simulated time, e.g. one node's RDMA NIC DMA
// engine. Reserve() books the earliest interval of `busy_ns` at or after the
// caller's simulated time and returns its start.
//
// Because worker clocks are only loosely synchronized (see TimeGate), callers
// arrive with out-of-order timestamps. A naive "free-at" watermark would
// push every slow-clocked caller to the fastest caller's time, charging
// phantom queueing; instead we keep a bounded window of booked intervals and
// *backfill* requests into idle gaps. Intervals older than the horizon are
// folded into a floor watermark (they can no longer overlap live clocks, the
// TimeGate keeps skew far below the horizon). Saturation behaviour — the
// mechanism behind the paper's NIC bottleneck (Figs. 15/16) — is preserved:
// when offered load exceeds capacity the window packs densely and requests
// queue past its end.
#ifndef DRTMR_SIM_RESOURCE_DEFINED
#define DRTMR_SIM_RESOURCE_DEFINED
#endif
class SimResource {
 public:
  // Returns the simulated start time of service.
  uint64_t Reserve(uint64_t caller_now_ns, uint64_t busy_ns) {
    if (busy_ns == 0) {
      busy_ns = 1;
    }
    const std::lock_guard<Spinlock> g(mu_);
    // Keep room for the insertion (fold the oldest intervals into the floor).
    while (count_ >= kCap - 1) {
      if (At(0).end > floor_) {
        floor_ = At(0).end;
      }
      head_ = (head_ + 1) % kCap;
      count_--;
    }
    uint64_t candidate = caller_now_ns > floor_ ? caller_now_ns : floor_;
    size_t pos = 0;
    for (; pos < count_; ++pos) {
      const Interval& iv = At(pos);
      if (iv.end <= candidate) {
        continue;
      }
      if (iv.start >= candidate + busy_ns) {
        break;  // fits in the gap before this interval
      }
      candidate = iv.end;
    }
    InsertAt(pos, Interval{candidate, candidate + busy_ns});
    if (candidate + busy_ns > max_end_) {
      max_end_ = candidate + busy_ns;
    }
    Evict();
    return candidate;
  }

  // Furthest booked completion (diagnostics/tests).
  uint64_t free_at_ns() const {
    const std::lock_guard<Spinlock> g(mu_);
    return max_end_;
  }

  void Reset() {
    const std::lock_guard<Spinlock> g(mu_);
    count_ = 0;
    head_ = 0;
    floor_ = 0;
    max_end_ = 0;
  }

 private:
  struct Interval {
    uint64_t start;
    uint64_t end;
  };
  static constexpr size_t kCap = 256;
  static constexpr uint64_t kHorizonNs = 2000000;  // 2ms >> TimeGate window

  Interval& At(size_t i) { return ring_[(head_ + i) % kCap]; }

  void InsertAt(size_t pos, Interval iv) {
    // Shift [pos, count_) right by one (count_ < kCap guaranteed by Evict).
    for (size_t i = count_; i > pos; --i) {
      ring_[(head_ + i) % kCap] = ring_[(head_ + i - 1) % kCap];
    }
    ring_[(head_ + pos) % kCap] = iv;
    count_++;
  }

  void Evict() {
    while (count_ > 0 && At(0).end + kHorizonNs < max_end_) {
      if (At(0).end > floor_) {
        floor_ = At(0).end;
      }
      head_ = (head_ + 1) % kCap;
      count_--;
    }
  }

  mutable Spinlock mu_;
  Interval ring_[kCap];
  size_t head_ = 0;
  size_t count_ = 0;
  uint64_t floor_ = 0;    // everything before this is considered booked
  uint64_t max_end_ = 0;
};

}  // namespace drtmr

#endif  // DRTMR_SRC_UTIL_SIM_CLOCK_H_
