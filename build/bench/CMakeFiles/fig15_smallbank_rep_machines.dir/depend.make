# Empty dependencies file for fig15_smallbank_rep_machines.
# This may be replaced when dependencies are built.
