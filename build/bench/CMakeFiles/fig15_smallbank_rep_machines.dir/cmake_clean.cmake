file(REMOVE_RECURSE
  "CMakeFiles/fig15_smallbank_rep_machines.dir/fig15_smallbank_rep_machines.cc.o"
  "CMakeFiles/fig15_smallbank_rep_machines.dir/fig15_smallbank_rep_machines.cc.o.d"
  "fig15_smallbank_rep_machines"
  "fig15_smallbank_rep_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_smallbank_rep_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
