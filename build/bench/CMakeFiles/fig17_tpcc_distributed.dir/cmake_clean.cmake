file(REMOVE_RECURSE
  "CMakeFiles/fig17_tpcc_distributed.dir/fig17_tpcc_distributed.cc.o"
  "CMakeFiles/fig17_tpcc_distributed.dir/fig17_tpcc_distributed.cc.o.d"
  "fig17_tpcc_distributed"
  "fig17_tpcc_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_tpcc_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
