# Empty dependencies file for fig17_tpcc_distributed.
# This may be replaced when dependencies are built.
