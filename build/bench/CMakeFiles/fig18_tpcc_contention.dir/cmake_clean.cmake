file(REMOVE_RECURSE
  "CMakeFiles/fig18_tpcc_contention.dir/fig18_tpcc_contention.cc.o"
  "CMakeFiles/fig18_tpcc_contention.dir/fig18_tpcc_contention.cc.o.d"
  "fig18_tpcc_contention"
  "fig18_tpcc_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tpcc_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
