# Empty compiler generated dependencies file for fig18_tpcc_contention.
# This may be replaced when dependencies are built.
