# Empty dependencies file for table5_mix.
# This may be replaced when dependencies are built.
