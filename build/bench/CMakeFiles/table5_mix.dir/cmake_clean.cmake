file(REMOVE_RECURSE
  "CMakeFiles/table5_mix.dir/table5_mix.cc.o"
  "CMakeFiles/table5_mix.dir/table5_mix.cc.o.d"
  "table5_mix"
  "table5_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
