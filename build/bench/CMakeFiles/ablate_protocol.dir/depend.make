# Empty dependencies file for ablate_protocol.
# This may be replaced when dependencies are built.
