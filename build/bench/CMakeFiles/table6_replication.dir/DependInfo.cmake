
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_replication.cc" "bench/CMakeFiles/table6_replication.dir/table6_replication.cc.o" "gcc" "bench/CMakeFiles/table6_replication.dir/table6_replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/drtmr_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/drtmr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/drtmr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rep/CMakeFiles/drtmr_rep.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/drtmr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/drtmr_store.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/drtmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drtmr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
