file(REMOVE_RECURSE
  "CMakeFiles/table6_replication.dir/table6_replication.cc.o"
  "CMakeFiles/table6_replication.dir/table6_replication.cc.o.d"
  "table6_replication"
  "table6_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
