# Empty dependencies file for table6_replication.
# This may be replaced when dependencies are built.
