# Empty dependencies file for fig13_smallbank_machines.
# This may be replaced when dependencies are built.
