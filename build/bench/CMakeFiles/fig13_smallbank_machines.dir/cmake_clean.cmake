file(REMOVE_RECURSE
  "CMakeFiles/fig13_smallbank_machines.dir/fig13_smallbank_machines.cc.o"
  "CMakeFiles/fig13_smallbank_machines.dir/fig13_smallbank_machines.cc.o.d"
  "fig13_smallbank_machines"
  "fig13_smallbank_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_smallbank_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
