file(REMOVE_RECURSE
  "../lib/libdrtmr_bench_common.a"
  "../lib/libdrtmr_bench_common.pdb"
  "CMakeFiles/drtmr_bench_common.dir/harness.cc.o"
  "CMakeFiles/drtmr_bench_common.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
