# Empty compiler generated dependencies file for drtmr_bench_common.
# This may be replaced when dependencies are built.
