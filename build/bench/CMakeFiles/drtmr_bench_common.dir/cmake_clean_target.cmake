file(REMOVE_RECURSE
  "../lib/libdrtmr_bench_common.a"
)
