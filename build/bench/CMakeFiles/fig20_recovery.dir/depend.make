# Empty dependencies file for fig20_recovery.
# This may be replaced when dependencies are built.
