file(REMOVE_RECURSE
  "CMakeFiles/fig20_recovery.dir/fig20_recovery.cc.o"
  "CMakeFiles/fig20_recovery.dir/fig20_recovery.cc.o.d"
  "fig20_recovery"
  "fig20_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
