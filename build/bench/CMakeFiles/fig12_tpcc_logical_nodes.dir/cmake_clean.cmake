file(REMOVE_RECURSE
  "CMakeFiles/fig12_tpcc_logical_nodes.dir/fig12_tpcc_logical_nodes.cc.o"
  "CMakeFiles/fig12_tpcc_logical_nodes.dir/fig12_tpcc_logical_nodes.cc.o.d"
  "fig12_tpcc_logical_nodes"
  "fig12_tpcc_logical_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tpcc_logical_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
