# Empty compiler generated dependencies file for fig12_tpcc_logical_nodes.
# This may be replaced when dependencies are built.
