# Empty dependencies file for fig19_tpcc_datasize.
# This may be replaced when dependencies are built.
