file(REMOVE_RECURSE
  "CMakeFiles/fig19_tpcc_datasize.dir/fig19_tpcc_datasize.cc.o"
  "CMakeFiles/fig19_tpcc_datasize.dir/fig19_tpcc_datasize.cc.o.d"
  "fig19_tpcc_datasize"
  "fig19_tpcc_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_tpcc_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
