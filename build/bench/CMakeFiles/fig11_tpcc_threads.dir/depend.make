# Empty dependencies file for fig11_tpcc_threads.
# This may be replaced when dependencies are built.
