file(REMOVE_RECURSE
  "CMakeFiles/fig14_smallbank_threads.dir/fig14_smallbank_threads.cc.o"
  "CMakeFiles/fig14_smallbank_threads.dir/fig14_smallbank_threads.cc.o.d"
  "fig14_smallbank_threads"
  "fig14_smallbank_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_smallbank_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
