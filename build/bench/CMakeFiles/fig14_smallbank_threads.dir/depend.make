# Empty dependencies file for fig14_smallbank_threads.
# This may be replaced when dependencies are built.
