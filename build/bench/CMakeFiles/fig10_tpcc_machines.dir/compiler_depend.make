# Empty compiler generated dependencies file for fig10_tpcc_machines.
# This may be replaced when dependencies are built.
