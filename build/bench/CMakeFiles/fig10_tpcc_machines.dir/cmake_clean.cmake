file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpcc_machines.dir/fig10_tpcc_machines.cc.o"
  "CMakeFiles/fig10_tpcc_machines.dir/fig10_tpcc_machines.cc.o.d"
  "fig10_tpcc_machines"
  "fig10_tpcc_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpcc_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
