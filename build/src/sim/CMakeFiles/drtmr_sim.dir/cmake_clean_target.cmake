file(REMOVE_RECURSE
  "libdrtmr_sim.a"
)
