file(REMOVE_RECURSE
  "CMakeFiles/drtmr_sim.dir/fabric.cc.o"
  "CMakeFiles/drtmr_sim.dir/fabric.cc.o.d"
  "CMakeFiles/drtmr_sim.dir/htm.cc.o"
  "CMakeFiles/drtmr_sim.dir/htm.cc.o.d"
  "CMakeFiles/drtmr_sim.dir/memory_bus.cc.o"
  "CMakeFiles/drtmr_sim.dir/memory_bus.cc.o.d"
  "libdrtmr_sim.a"
  "libdrtmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
