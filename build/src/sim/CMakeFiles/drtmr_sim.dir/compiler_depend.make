# Empty compiler generated dependencies file for drtmr_sim.
# This may be replaced when dependencies are built.
