file(REMOVE_RECURSE
  "CMakeFiles/drtmr_store.dir/btree_store.cc.o"
  "CMakeFiles/drtmr_store.dir/btree_store.cc.o.d"
  "CMakeFiles/drtmr_store.dir/hash_store.cc.o"
  "CMakeFiles/drtmr_store.dir/hash_store.cc.o.d"
  "libdrtmr_store.a"
  "libdrtmr_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
