file(REMOVE_RECURSE
  "libdrtmr_store.a"
)
