# Empty dependencies file for drtmr_store.
# This may be replaced when dependencies are built.
