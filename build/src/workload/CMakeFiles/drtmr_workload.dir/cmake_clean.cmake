file(REMOVE_RECURSE
  "CMakeFiles/drtmr_workload.dir/driver.cc.o"
  "CMakeFiles/drtmr_workload.dir/driver.cc.o.d"
  "CMakeFiles/drtmr_workload.dir/smallbank.cc.o"
  "CMakeFiles/drtmr_workload.dir/smallbank.cc.o.d"
  "CMakeFiles/drtmr_workload.dir/tpcc.cc.o"
  "CMakeFiles/drtmr_workload.dir/tpcc.cc.o.d"
  "libdrtmr_workload.a"
  "libdrtmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
