# Empty dependencies file for drtmr_workload.
# This may be replaced when dependencies are built.
