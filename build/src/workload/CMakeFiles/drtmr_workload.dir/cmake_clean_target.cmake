file(REMOVE_RECURSE
  "libdrtmr_workload.a"
)
