# Empty compiler generated dependencies file for drtmr_cluster.
# This may be replaced when dependencies are built.
