file(REMOVE_RECURSE
  "libdrtmr_cluster.a"
)
