file(REMOVE_RECURSE
  "CMakeFiles/drtmr_cluster.dir/coordinator.cc.o"
  "CMakeFiles/drtmr_cluster.dir/coordinator.cc.o.d"
  "CMakeFiles/drtmr_cluster.dir/node.cc.o"
  "CMakeFiles/drtmr_cluster.dir/node.cc.o.d"
  "CMakeFiles/drtmr_cluster.dir/snapshot.cc.o"
  "CMakeFiles/drtmr_cluster.dir/snapshot.cc.o.d"
  "libdrtmr_cluster.a"
  "libdrtmr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
