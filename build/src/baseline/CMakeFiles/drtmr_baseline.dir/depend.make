# Empty dependencies file for drtmr_baseline.
# This may be replaced when dependencies are built.
