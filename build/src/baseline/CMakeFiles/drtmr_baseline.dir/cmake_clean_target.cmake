file(REMOVE_RECURSE
  "libdrtmr_baseline.a"
)
