file(REMOVE_RECURSE
  "CMakeFiles/drtmr_baseline.dir/calvin.cc.o"
  "CMakeFiles/drtmr_baseline.dir/calvin.cc.o.d"
  "CMakeFiles/drtmr_baseline.dir/drtm.cc.o"
  "CMakeFiles/drtmr_baseline.dir/drtm.cc.o.d"
  "CMakeFiles/drtmr_baseline.dir/silo.cc.o"
  "CMakeFiles/drtmr_baseline.dir/silo.cc.o.d"
  "libdrtmr_baseline.a"
  "libdrtmr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
