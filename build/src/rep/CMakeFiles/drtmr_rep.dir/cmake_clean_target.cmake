file(REMOVE_RECURSE
  "libdrtmr_rep.a"
)
