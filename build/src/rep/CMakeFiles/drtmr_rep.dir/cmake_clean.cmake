file(REMOVE_RECURSE
  "CMakeFiles/drtmr_rep.dir/primary_backup.cc.o"
  "CMakeFiles/drtmr_rep.dir/primary_backup.cc.o.d"
  "CMakeFiles/drtmr_rep.dir/recovery.cc.o"
  "CMakeFiles/drtmr_rep.dir/recovery.cc.o.d"
  "libdrtmr_rep.a"
  "libdrtmr_rep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_rep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
