# Empty dependencies file for drtmr_rep.
# This may be replaced when dependencies are built.
