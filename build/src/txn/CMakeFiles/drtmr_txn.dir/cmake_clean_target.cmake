file(REMOVE_RECURSE
  "libdrtmr_txn.a"
)
