file(REMOVE_RECURSE
  "CMakeFiles/drtmr_txn.dir/transaction.cc.o"
  "CMakeFiles/drtmr_txn.dir/transaction.cc.o.d"
  "CMakeFiles/drtmr_txn.dir/txn_engine.cc.o"
  "CMakeFiles/drtmr_txn.dir/txn_engine.cc.o.d"
  "libdrtmr_txn.a"
  "libdrtmr_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtmr_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
