# Empty dependencies file for drtmr_txn.
# This may be replaced when dependencies are built.
