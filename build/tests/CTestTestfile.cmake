# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/memory_bus_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/record_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_time_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fallback_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_under_load_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_txn_test[1]_include.cmake")
include("/root/repo/build/tests/fused_lock_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/durability_test[1]_include.cmake")
include("/root/repo/build/tests/smallbank_test[1]_include.cmake")
include("/root/repo/build/tests/htm_param_test[1]_include.cmake")
