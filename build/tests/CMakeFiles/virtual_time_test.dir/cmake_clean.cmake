file(REMOVE_RECURSE
  "CMakeFiles/virtual_time_test.dir/virtual_time_test.cc.o"
  "CMakeFiles/virtual_time_test.dir/virtual_time_test.cc.o.d"
  "virtual_time_test"
  "virtual_time_test.pdb"
  "virtual_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
