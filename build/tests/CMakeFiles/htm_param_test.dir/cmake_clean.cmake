file(REMOVE_RECURSE
  "CMakeFiles/htm_param_test.dir/htm_param_test.cc.o"
  "CMakeFiles/htm_param_test.dir/htm_param_test.cc.o.d"
  "htm_param_test"
  "htm_param_test.pdb"
  "htm_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
