# Empty dependencies file for htm_param_test.
# This may be replaced when dependencies are built.
