# Empty compiler generated dependencies file for fallback_test.
# This may be replaced when dependencies are built.
