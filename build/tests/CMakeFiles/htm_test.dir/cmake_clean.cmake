file(REMOVE_RECURSE
  "CMakeFiles/htm_test.dir/htm_test.cc.o"
  "CMakeFiles/htm_test.dir/htm_test.cc.o.d"
  "htm_test"
  "htm_test.pdb"
  "htm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
