# Empty compiler generated dependencies file for fused_lock_test.
# This may be replaced when dependencies are built.
