file(REMOVE_RECURSE
  "CMakeFiles/fused_lock_test.dir/fused_lock_test.cc.o"
  "CMakeFiles/fused_lock_test.dir/fused_lock_test.cc.o.d"
  "fused_lock_test"
  "fused_lock_test.pdb"
  "fused_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
