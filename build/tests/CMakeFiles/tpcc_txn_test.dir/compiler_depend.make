# Empty compiler generated dependencies file for tpcc_txn_test.
# This may be replaced when dependencies are built.
