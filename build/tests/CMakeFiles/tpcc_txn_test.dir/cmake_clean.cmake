file(REMOVE_RECURSE
  "CMakeFiles/tpcc_txn_test.dir/tpcc_txn_test.cc.o"
  "CMakeFiles/tpcc_txn_test.dir/tpcc_txn_test.cc.o.d"
  "tpcc_txn_test"
  "tpcc_txn_test.pdb"
  "tpcc_txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
