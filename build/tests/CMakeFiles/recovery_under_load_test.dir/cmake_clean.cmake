file(REMOVE_RECURSE
  "CMakeFiles/recovery_under_load_test.dir/recovery_under_load_test.cc.o"
  "CMakeFiles/recovery_under_load_test.dir/recovery_under_load_test.cc.o.d"
  "recovery_under_load_test"
  "recovery_under_load_test.pdb"
  "recovery_under_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_under_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
