# Empty compiler generated dependencies file for recovery_under_load_test.
# This may be replaced when dependencies are built.
